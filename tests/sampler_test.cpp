// Unit tests for symbol-value generation and the Eq. (4) sampling
// product, including exact-probability checks against
// SymPhaseSampler::outcome_probability.

#include "sampler/symphase_sampler.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/generators.hpp"
#include "circuit/parser.hpp"
#include "sampler/symbol_value_sampler.hpp"

namespace symphase {
namespace {

double row_mean(const BitMatrix& m, std::size_t row, std::size_t cols) {
  std::size_t ones = 0;
  for (std::size_t w = 0; w < words_for_bits(cols); ++w) {
    ones += static_cast<std::size_t>(popcount(m.row(row)[w]));
  }
  return static_cast<double>(ones) / static_cast<double>(cols);
}

TEST(SymbolValueSampler, ConstantRowIsAllOnes) {
  SymbolTable table;
  SymbolValueSampler sampler(table, {0});
  const BitMatrix b = sampler.generate(100, 1);
  ASSERT_EQ(b.rows(), 1u);
  EXPECT_DOUBLE_EQ(row_mean(b, 0, 100), 1.0);
}

TEST(SymbolValueSampler, CoinRowIsBalanced) {
  SymbolTable table;
  const auto s = table.add_coin();
  SymbolValueSampler sampler(table, {s});
  constexpr std::size_t kShots = 64000;
  const BitMatrix b = sampler.generate(kShots, 2);
  EXPECT_NEAR(row_mean(b, 0, kShots), 0.5, 5 * std::sqrt(0.25 / kShots));
}

TEST(SymbolValueSampler, BernoulliRate) {
  SymbolTable table;
  const auto s = table.add_bernoulli(0.05);
  SymbolValueSampler sampler(table, {s});
  constexpr std::size_t kShots = 100000;
  const BitMatrix b = sampler.generate(kShots, 3);
  EXPECT_NEAR(row_mean(b, 0, kShots), 0.05,
              5 * std::sqrt(0.05 * 0.95 / kShots));
}

TEST(SymbolValueSampler, Depolarize1JointDistribution) {
  SymbolTable table;
  const auto s = table.add_depolarize1(0.3);
  SymbolValueSampler sampler(table, {s, s + 1});
  constexpr std::size_t kShots = 200000;
  const BitMatrix b = sampler.generate(kShots, 4);
  // Count joint patterns.
  std::size_t counts[4] = {};
  for (std::size_t j = 0; j < kShots; ++j) {
    const int pattern = (b.get(0, j) ? 1 : 0) | (b.get(1, j) ? 2 : 0);
    ++counts[pattern];
  }
  const double expected[4] = {0.7, 0.1, 0.1, 0.1};
  for (int p = 0; p < 4; ++p) {
    const double sigma =
        std::sqrt(kShots * expected[p] * (1 - expected[p]));
    EXPECT_NEAR(counts[p], kShots * expected[p], 5 * sigma) << "pattern " << p;
  }
}

TEST(SymbolValueSampler, Depolarize2UniformOverFifteen) {
  SymbolTable table;
  const auto s = table.add_depolarize2(0.75);
  SymbolValueSampler sampler(table, {s, s + 1, s + 2, s + 3});
  constexpr std::size_t kShots = 150000;
  const BitMatrix b = sampler.generate(kShots, 5);
  std::size_t counts[16] = {};
  for (std::size_t j = 0; j < kShots; ++j) {
    int pattern = 0;
    for (int m = 0; m < 4; ++m) {
      pattern |= (b.get(static_cast<std::size_t>(m), j) ? 1 : 0) << m;
    }
    ++counts[pattern];
  }
  EXPECT_NEAR(counts[0], kShots * 0.25, 5 * std::sqrt(kShots * 0.25 * 0.75));
  for (int p = 1; p < 16; ++p) {
    const double e = 0.75 / 15;
    EXPECT_NEAR(counts[p], kShots * e, 5 * std::sqrt(kShots * e * (1 - e)))
        << "pattern " << p;
  }
}

TEST(SymbolValueSampler, UnusedGroupMembersSkipped) {
  SymbolTable table;
  const auto s = table.add_depolarize1(0.2);  // symbols 1,2
  // Only the X component used.
  SymbolValueSampler sampler(table, {s});
  EXPECT_EQ(sampler.num_rows(), 1u);
  const BitMatrix b = sampler.generate(50000, 6);
  // Marginal of the X component: P(X or Y) = 2p/3.
  EXPECT_NEAR(row_mean(b, 0, 50000), 2.0 * 0.2 / 3,
              5 * std::sqrt(0.2 * (1 - 0.2) / 50000) + 0.005);
}

TEST(SymbolValueSampler, DeterministicInSeed) {
  SymbolTable table;
  table.add_coin();
  table.add_bernoulli(0.1);
  table.add_depolarize1(0.05);
  SymbolValueSampler sampler(table, {0, 1, 2, 3, 4});
  EXPECT_EQ(sampler.generate(1000, 7), sampler.generate(1000, 7));
}

TEST(SymbolValueSampler, RowLookupValidation) {
  SymbolTable table;
  table.add_coin();
  table.add_coin();
  SymbolValueSampler sampler(table, {2});
  EXPECT_EQ(sampler.row_of(2), 0u);
  EXPECT_THROW(sampler.row_of(1), std::invalid_argument);
}

// --- End-to-end sampling through expressions ------------------------

class SamplerStrategyTest
    : public ::testing::TestWithParam<MultiplyStrategy> {};

TEST_P(SamplerStrategyTest, ConstantExpressions) {
  SymbolTable table;
  std::vector<MeasurementExpression> exprs = {
      {{}, false},    // always 0
      {{0}, false},   // always 1
  };
  SymPhaseSampler sampler(table, exprs, GetParam());
  const BitMatrix samples = sampler.sample(130, 1);
  EXPECT_DOUBLE_EQ(row_mean(samples, 0, 130), 0.0);
  EXPECT_DOUBLE_EQ(row_mean(samples, 1, 130), 1.0);
}

TEST_P(SamplerStrategyTest, XorOfTwoBernoullis) {
  SymbolTable table;
  const auto s1 = table.add_bernoulli(0.2);
  const auto s2 = table.add_bernoulli(0.3);
  std::vector<MeasurementExpression> exprs = {{{s1, s2}, false}};
  SymPhaseSampler sampler(table, exprs, GetParam());
  const double expected = 0.2 * 0.7 + 0.8 * 0.3;
  EXPECT_NEAR(sampler.outcome_probability(0), expected, 1e-12);
  constexpr std::size_t kShots = 100000;
  const BitMatrix samples = sampler.sample(kShots, 2);
  EXPECT_NEAR(row_mean(samples, 0, kShots), expected,
              5 * std::sqrt(expected * (1 - expected) / kShots));
}

TEST_P(SamplerStrategyTest, SparseAndDenseAgreeExactly) {
  SymbolTable table;
  std::vector<std::uint32_t> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(table.add_bernoulli(0.1 + 0.05 * i));
  }
  std::vector<MeasurementExpression> exprs;
  exprs.push_back({{ids[0], ids[3], ids[7]}, false});
  exprs.push_back({{0, ids[1]}, false});
  exprs.push_back({{}, false});
  exprs.push_back({{ids[9]}, true});
  SymPhaseSampler sparse(table, exprs, MultiplyStrategy::kSparse);
  SymPhaseSampler dense(table, exprs, MultiplyStrategy::kDense);
  EXPECT_EQ(sparse.sample(4096, 3), dense.sample(4096, 3));
}

INSTANTIATE_TEST_SUITE_P(Strategies, SamplerStrategyTest,
                         ::testing::Values(MultiplyStrategy::kSparse,
                                           MultiplyStrategy::kDense));

TEST(OutcomeProbability, CoinDominates) {
  SymbolTable table;
  const auto c = table.add_coin();
  const auto b = table.add_bernoulli(0.01);
  std::vector<MeasurementExpression> exprs = {{{c, b}, true}};
  SymPhaseSampler sampler(table, exprs);
  EXPECT_DOUBLE_EQ(sampler.outcome_probability(0), 0.5);
}

TEST(OutcomeProbability, ConstantInverts) {
  SymbolTable table;
  const auto b = table.add_bernoulli(0.1);
  std::vector<MeasurementExpression> exprs = {{{0, b}, false}};
  SymPhaseSampler sampler(table, exprs);
  EXPECT_NEAR(sampler.outcome_probability(0), 0.9, 1e-12);
}

TEST(OutcomeProbability, DepolarizePairParity) {
  // Expression = s_x ^ s_z of one DEPOLARIZE1(p): parity is 1 for X or Z
  // patterns (10, 01), 0 for I and Y (00, 11) -> P = 2p/3.
  SymbolTable table;
  const auto s = table.add_depolarize1(0.3);
  std::vector<MeasurementExpression> exprs = {{{s, s + 1}, false}};
  SymPhaseSampler sampler(table, exprs);
  EXPECT_NEAR(sampler.outcome_probability(0), 0.2, 1e-12);
}

}  // namespace
}  // namespace symphase
