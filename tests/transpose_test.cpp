#include "bitvec/transpose.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/bits.hpp"
#include "common/rng.hpp"

namespace symphase {
namespace {

TEST(Transpose64, IdentityFixedPoint) {
  std::uint64_t block[64];
  for (int i = 0; i < 64; ++i) {
    block[i] = std::uint64_t{1} << i;  // identity matrix
  }
  transpose_64x64(block);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(block[i], std::uint64_t{1} << i);
  }
}

TEST(Transpose64, SingleBitMoves) {
  std::uint64_t block[64] = {};
  block[3] = std::uint64_t{1} << 17;  // bit (3, 17)
  transpose_64x64(block);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(block[i], i == 17 ? (std::uint64_t{1} << 3) : 0u);
  }
}

TEST(Transpose64, InvolutionOnRandom) {
  Rng rng(1);
  std::uint64_t block[64];
  std::uint64_t original[64];
  for (int i = 0; i < 64; ++i) {
    original[i] = block[i] = rng.next_word();
  }
  transpose_64x64(block);
  transpose_64x64(block);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(block[i], original[i]);
  }
}

TEST(Transpose64, MatchesNaive) {
  Rng rng(2);
  std::uint64_t block[64];
  std::uint64_t original[64];
  for (int i = 0; i < 64; ++i) {
    original[i] = block[i] = rng.next_word();
  }
  transpose_64x64(block);
  for (int r = 0; r < 64; ++r) {
    for (int c = 0; c < 64; ++c) {
      const bool orig = (original[r] >> c) & 1;
      const bool trans = (block[c] >> r) & 1;
      ASSERT_EQ(orig, trans) << r << "," << c;
    }
  }
}

TEST(TransposeStrided, EquivalentToContiguous) {
  Rng rng(3);
  constexpr std::size_t kStride = 5;
  std::vector<std::uint64_t> strided(64 * kStride, 0);
  std::uint64_t contiguous[64];
  for (int i = 0; i < 64; ++i) {
    contiguous[i] = strided[static_cast<std::size_t>(i) * kStride] =
        rng.next_word();
  }
  transpose_64x64(contiguous);
  transpose_64x64_strided(strided.data(), kStride);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(strided[static_cast<std::size_t>(i) * kStride], contiguous[i]);
  }
}

TEST(TransposeBitMatrix, RectangularMatchesNaive) {
  Rng rng(4);
  constexpr std::size_t wr = 2;  // 128 rows
  constexpr std::size_t wc = 3;  // 192 cols
  std::vector<std::uint64_t> in(128 * wc);
  std::vector<std::uint64_t> out(192 * wr);
  for (auto& w : in) {
    w = rng.next_word();
  }
  transpose_bit_matrix(in.data(), wr, wc, out.data());
  for (std::size_t r = 0; r < 128; ++r) {
    for (std::size_t c = 0; c < 192; ++c) {
      const bool a = get_bit(&in[r * wc], c);
      const bool b = get_bit(&out[c * wr], r);
      ASSERT_EQ(a, b) << r << "," << c;
    }
  }
}

class InplaceTransposeParam : public ::testing::TestWithParam<std::size_t> {};

TEST_P(InplaceTransposeParam, MatchesNaiveAndInvolutes) {
  const std::size_t w = GetParam();
  const std::size_t dim = 64 * w;
  Rng rng(w);
  std::vector<std::uint64_t> data(dim * w);
  for (auto& word : data) {
    word = rng.next_word();
  }
  std::vector<std::uint64_t> original = data;
  transpose_bit_matrix_inplace(data.data(), w);
  for (std::size_t r = 0; r < dim; ++r) {
    for (std::size_t c = 0; c < dim; ++c) {
      const bool a = get_bit(&original[r * w], c);
      const bool b = get_bit(&data[c * w], r);
      ASSERT_EQ(a, b) << r << "," << c;
    }
  }
  transpose_bit_matrix_inplace(data.data(), w);
  EXPECT_EQ(data, original);
}

INSTANTIATE_TEST_SUITE_P(Widths, InplaceTransposeParam,
                         ::testing::Values(1, 2, 3, 8));

}  // namespace
}  // namespace symphase

namespace symphase {
namespace {

TEST(TransposeTile512, MatchesGenericInplace) {
  Rng rng(99);
  std::vector<std::uint64_t> a(512 * 8);
  for (auto& w : a) {
    w = rng.next_word();
  }
  std::vector<std::uint64_t> b = a;
  transpose_tile512_inplace(a.data());
  transpose_bit_matrix_inplace(b.data(), 8);
  EXPECT_EQ(a, b);
}

TEST(TransposeTile512, Involution) {
  Rng rng(100);
  std::vector<std::uint64_t> a(512 * 8);
  for (auto& w : a) {
    w = rng.next_word();
  }
  const std::vector<std::uint64_t> original = a;
  transpose_tile512_inplace(a.data());
  EXPECT_NE(a, original);
  transpose_tile512_inplace(a.data());
  EXPECT_EQ(a, original);
}

}  // namespace
}  // namespace symphase
