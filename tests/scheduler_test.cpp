// Scheduler semantics of the sampling service (src/service/scheduler.hpp
// + the SamplingService integration): priority/deadline/FIFO ordering of
// the indexed heap, deadline-expired rejection before any compilation,
// priority jumps under a saturated single-worker pool, cooperative
// cancellation (queued and mid-stream) leaving the session cache
// reusable, and the queue metrics surfaced through stats().

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/session.hpp"
#include "circuit/parser.hpp"
#include "sampler/sample_writer.hpp"
#include "service/request.hpp"
#include "service/scheduler.hpp"
#include "service/service.hpp"
#include "service/wire.hpp"

namespace symphase {
namespace {

constexpr const char* kCircuitA = "H 0\nCNOT 0 1\nX_ERROR(0.1) 0 1\nM 0 1\n";
constexpr const char* kCircuitB = "X 0\nM 0 1 2\n";

using Clock = SchedulerClock;

std::string direct_output(const std::string& circuit_text,
                          const SampleTask& task, SampleFormat format) {
  const SimulatorSession session(parse_circuit(circuit_text));
  std::ostringstream oss;
  WriterSink sink(oss, format);
  session.run(task, sink);
  return oss.str();
}

// ---------------------------------------------------------------------------
// DeadlineQueue unit semantics.

TEST(DeadlineQueue, OrdersByPriorityThenDeadlineThenArrival) {
  DeadlineQueue<int> queue;
  const auto now = Clock::now();
  using Item = DeadlineQueue<int>::Item;
  // Arrival order deliberately scrambled relative to urgency.
  queue.push(Item{1, RequestPriority::kLow, kNoDeadline, 10});
  queue.push(Item{2, RequestPriority::kNormal, kNoDeadline, 20});
  queue.push(Item{3, RequestPriority::kNormal,
                  now + std::chrono::milliseconds(500), 30});
  queue.push(Item{4, RequestPriority::kHigh, kNoDeadline, 40});
  queue.push(Item{5, RequestPriority::kNormal,
                  now + std::chrono::milliseconds(100), 50});
  queue.push(Item{6, RequestPriority::kNormal, kNoDeadline, 60});

  std::vector<std::uint64_t> order;
  while (!queue.empty()) {
    order.push_back(queue.pop().ticket);
  }
  // High first; then normal by earliest deadline (5 before 3), then
  // no-deadline normals FIFO (2 before 6); low last.
  EXPECT_EQ(order, (std::vector<std::uint64_t>{4, 5, 3, 2, 6, 1}));
}

TEST(DeadlineQueue, RemoveByTicketKeepsHeapConsistent) {
  DeadlineQueue<int> queue;
  using Item = DeadlineQueue<int>::Item;
  for (std::uint64_t t = 1; t <= 9; ++t) {
    const auto priority = static_cast<RequestPriority>(t % 3);
    queue.push(Item{t, priority, kNoDeadline, static_cast<int>(t)});
  }
  Item removed;
  EXPECT_TRUE(queue.remove(5, &removed));
  EXPECT_EQ(removed.ticket, 5u);
  EXPECT_EQ(removed.payload, 5);
  EXPECT_FALSE(queue.remove(5));   // already gone
  EXPECT_FALSE(queue.remove(99));  // never existed
  EXPECT_EQ(queue.size(), 8u);

  std::vector<std::uint64_t> order;
  while (!queue.empty()) {
    order.push_back(queue.pop().ticket);
  }
  // Priority classes: high = tickets 3,6,9; normal = 1,4,7; low = 2,8
  // (5 removed); FIFO inside each class.
  EXPECT_EQ(order, (std::vector<std::uint64_t>{3, 6, 9, 1, 4, 7, 2, 8}));
}

TEST(DeadlineQueue, DuplicateTicketIsRejected) {
  DeadlineQueue<int> queue;
  using Item = DeadlineQueue<int>::Item;
  queue.push(Item{7, RequestPriority::kNormal, kNoDeadline, 0});
  EXPECT_THROW(queue.push(Item{7, RequestPriority::kLow, kNoDeadline, 1}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Request codec: the new scheduling fields.

TEST(RequestCodec, PriorityDeadlineAndCancelRoundTrip) {
  SampleRequest request = SampleRequest::sample(kCircuitA, 123);
  request.priority = RequestPriority::kHigh;
  request.deadline_ms = 250;
  const SampleRequest parsed =
      parse_request_payload(encode_request_payload(request));
  EXPECT_EQ(parsed.priority, RequestPriority::kHigh);
  EXPECT_EQ(parsed.deadline_ms, 250u);

  SampleRequest cancel;
  cancel.verb = RequestVerb::kCancel;
  cancel.cancel_id = 42;
  const SampleRequest cancel_parsed =
      parse_request_payload(encode_request_payload(cancel));
  EXPECT_EQ(cancel_parsed.verb, RequestVerb::kCancel);
  EXPECT_EQ(cancel_parsed.cancel_id, 42u);

  // Defaults round-trip without emitting the options at all.
  const std::string plain =
      encode_request_payload(SampleRequest::sample(kCircuitB, 5));
  EXPECT_EQ(plain.find("priority="), std::string::npos);
  EXPECT_EQ(plain.find("deadline_ms="), std::string::npos);

  for (const char* bad : {
           "sample priority=urgent\nM 0\n",  // unknown class
           "sample deadline_ms=soon\nM 0\n", // bad number
           "cancel\n",                       // missing id
           "cancel id=0\n",                  // reserved id
           "cancel id=1 shots=5\n",          // foreign option
           "cancel id=1\nM 0\n",             // trailing circuit text
       }) {
    EXPECT_THROW(parse_request_payload(bad), std::invalid_argument) << bad;
  }
}

// ---------------------------------------------------------------------------
// Service-level scheduling. The harness saturates a single worker with a
// "blocker" request whose first emitted frame parks on a latch, so
// everything submitted afterwards is provably queued before the
// scheduler makes its next decision.

class Latch {
 public:
  void release() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      released_ = true;
    }
    cv_.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return released_; });
  }
  /// Blocks until someone is waiting (so tests know the blocker runs).
  void wait_for_waiter() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return waiting_; });
  }
  void mark_waiting() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      waiting_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool released_ = false;
  bool waiting_ = false;
};

/// Emit fn that records the order in which requests finish.
class CompletionRecorder {
 public:
  FrameFn fn(std::uint64_t id) {
    return [this, id](const FrameHeader& header, std::string_view payload) {
      if ((header.flags & kFrameLast) != 0) {
        const std::lock_guard<std::mutex> lock(mutex_);
        order_.push_back(id);
        errors_.push_back((header.flags & kFrameError) != 0
                              ? std::string(payload)
                              : std::string());
      }
    };
  }
  std::vector<std::uint64_t> order() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return order_;
  }
  std::string error_for(std::uint64_t id) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < order_.size(); ++i) {
      if (order_[i] == id) {
        return errors_[i];
      }
    }
    return "<never finished>";
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::uint64_t> order_;
  std::vector<std::string> errors_;
};

/// Submits a blocker request to a 1-worker service: its first frame
/// parks until latch.release(). Returns once the worker is provably
/// inside the blocker (so later submits are queued behind it).
std::uint64_t submit_blocker(SamplingService& service, Latch& latch,
                             CompletionRecorder& recorder) {
  SampleRequest blocker = SampleRequest::sample(kCircuitB, 100);
  // One-shot park on the first emitted frame (owned by the lambda).
  auto first = std::make_shared<std::atomic<bool>>(true);
  const FrameFn record = recorder.fn(1);
  const std::uint64_t ticket = service.submit(
      1, blocker,
      [&latch, first, record](const FrameHeader& header,
                              std::string_view payload) {
        if (first->exchange(false)) {
          latch.mark_waiting();
          latch.wait();
        }
        record(header, payload);
      });
  latch.wait_for_waiter();
  return ticket;
}

TEST(SchedulerService, HighPriorityLateArrivalOvertakesEarlierLowPriority) {
  SamplingService service({.num_workers = 1});
  Latch latch;
  CompletionRecorder recorder;
  submit_blocker(service, latch, recorder);

  // Two low-priority requests, then a high-priority late arrival — the
  // ISSUE's acceptance ordering.
  SampleRequest low = SampleRequest::sample(kCircuitA, 200);
  low.priority = RequestPriority::kLow;
  SampleRequest high = SampleRequest::sample(kCircuitB, 200);
  high.priority = RequestPriority::kHigh;
  service.submit(2, low, recorder.fn(2));
  service.submit(3, low, recorder.fn(3));
  service.submit(4, high, recorder.fn(4));

  latch.release();
  service.drain();
  EXPECT_EQ(recorder.order(), (std::vector<std::uint64_t>{1, 4, 2, 3}));

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.served[static_cast<std::size_t>(RequestPriority::kHigh)],
            1u);
  EXPECT_EQ(stats.served[static_cast<std::size_t>(RequestPriority::kNormal)],
            1u);  // the blocker
  EXPECT_EQ(stats.served[static_cast<std::size_t>(RequestPriority::kLow)],
            2u);
  EXPECT_EQ(stats.queue_peak, 3u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST(SchedulerService, EarliestDeadlineFirstWithinAPriorityClass) {
  SamplingService service({.num_workers = 1});
  Latch latch;
  CompletionRecorder recorder;
  submit_blocker(service, latch, recorder);

  SampleRequest relaxed = SampleRequest::sample(kCircuitA, 100);
  relaxed.deadline_ms = 60'000;
  SampleRequest urgent = SampleRequest::sample(kCircuitA, 100);
  urgent.deadline_ms = 30'000;
  SampleRequest none = SampleRequest::sample(kCircuitA, 100);
  service.submit(2, none, recorder.fn(2));
  service.submit(3, relaxed, recorder.fn(3));
  service.submit(4, urgent, recorder.fn(4));

  latch.release();
  service.drain();
  // EDF within the class; no-deadline requests run after any deadline.
  EXPECT_EQ(recorder.order(), (std::vector<std::uint64_t>{1, 4, 3, 2}));
}

TEST(SchedulerService, DeadlineExpiredInQueueIsRejectedWithoutCompiling) {
  SamplingService service({.num_workers = 1});
  Latch latch;
  CompletionRecorder recorder;
  submit_blocker(service, latch, recorder);

  // kCircuitA is never otherwise submitted: its compile count pins that
  // the rejected request did no work.
  SampleRequest doomed = SampleRequest::sample(kCircuitA, 100);
  doomed.deadline_ms = 1;
  service.submit(2, doomed, recorder.fn(2));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  latch.release();
  service.drain();

  const std::string error = recorder.error_for(2);
  EXPECT_NE(error.find("deadline expired"), std::string::npos) << error;
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.rejected_expired, 1u) << stats.to_line();
  EXPECT_EQ(stats.completed, 1u) << stats.to_line();  // just the blocker
  // Only the blocker's circuit (kCircuitB) ever built a session.
  EXPECT_EQ(stats.misses, 1u) << stats.to_line();
  EXPECT_EQ(stats.compiles, 1u) << stats.to_line();
}

TEST(SchedulerService, DeadlinePastTheFinalChunkBoundaryStillCompletes) {
  // Mid-run deadline enforcement is cooperative: the watchdog flips the
  // request's cancel flag, and the engine acts on it at the next
  // shard-chunk boundary. A single-chunk run stalled inside its *final*
  // emit has no boundary left to stop at, so it completes — late, but
  // bit-exact — instead of being killed mid-write.
  SamplingService service(
      {.num_workers = 1, .watchdog_log = [](std::string_view) {}});
  CompletionRecorder recorder;
  SampleRequest slow = SampleRequest::sample(kCircuitB, 100);
  slow.deadline_ms = 200;  // plenty to *start* on an idle worker
  const FrameFn record = recorder.fn(1);
  auto stalled = std::make_shared<std::atomic<bool>>(true);
  service.submit(1, slow,
                 [stalled, record](const FrameHeader& header,
                                   std::string_view payload) {
                   if (stalled->exchange(false)) {
                     std::this_thread::sleep_for(
                         std::chrono::milliseconds(400));
                   }
                   record(header, payload);
                 });
  service.drain();
  EXPECT_EQ(recorder.error_for(1), "");  // completed, no error frame
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, 1u) << stats.to_line();
  EXPECT_EQ(stats.rejected_expired, 0u) << stats.to_line();
  EXPECT_EQ(stats.expired_running, 0u) << stats.to_line();
}

/// Parks a request's emit on its first data frame until `release()`,
/// so a test can hold a run demonstrably in flight while the watchdog
/// watches it age.
FrameFn parking_emit(Latch& parked, FrameFn record) {
  auto first = std::make_shared<std::atomic<bool>>(true);
  return [&parked, first, record = std::move(record)](
             const FrameHeader& header, std::string_view payload) {
    if ((header.flags & (kFrameLast | kFrameError)) == 0 &&
        first->exchange(false)) {
      parked.mark_waiting();
      parked.wait();
    }
    record(header, payload);
  };
}

bool logged_event(std::mutex& mutex, const std::vector<std::string>& lines,
                  std::string_view event) {
  const std::string needle = "\"event\":\"" + std::string(event) + "\"";
  const std::lock_guard<std::mutex> lock(mutex);
  for (const std::string& line : lines) {
    if (line.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

TEST(SchedulerService, WatchdogCutsADeadlineExpiredRunMidStream) {
  // The tentpole pin: a multi-chunk run whose deadline passes while it
  // executes is cut at the next chunk boundary with a mid-run
  // `deadline_expired` frame, counted in `expired_running` (NOT in the
  // pre-run `rejected_expired`), and the session cache stays usable.
  std::mutex log_mutex;
  std::vector<std::string> log_lines;
  SamplingService service({.num_workers = 1,
                           .max_frame_payload = 256,
                           .watchdog_log =
                               [&](std::string_view line) {
                                 const std::lock_guard<std::mutex> lock(
                                     log_mutex);
                                 log_lines.emplace_back(line);
                               }});
  CompletionRecorder recorder;
  Latch parked;
  // 200k shots = 25 shards at 256-byte frames: boundaries galore.
  SampleRequest slow = SampleRequest::sample(kCircuitB, 200'000);
  slow.format = SampleFormat::kB8;
  // Wide enough that the first chunk (and thus the park) always lands
  // before expiry, even under sanitizers; the park then holds the run
  // in flight for as long as the watchdog needs.
  slow.deadline_ms = 500;
  service.submit(1, slow, parking_emit(parked, recorder.fn(1)));
  parked.wait_for_waiter();
  // The run is parked inside its first emit; hold it there until the
  // watchdog has provably cut it (the structured log event is the
  // externally visible receipt of the cut).
  const auto poll_deadline = Clock::now() + std::chrono::seconds(10);
  while (!logged_event(log_mutex, log_lines, "deadline_expired")) {
    ASSERT_LT(Clock::now(), poll_deadline) << service.stats().to_line();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  parked.release();

  // The cut run must not poison the cached session for its neighbors.
  SampleRequest after = SampleRequest::sample(kCircuitB, 100);
  service.submit(2, after, recorder.fn(2));
  service.drain();

  const std::string error = recorder.error_for(1);
  EXPECT_NE(error.find("deadline expired mid-run"), std::string::npos)
      << error;
  EXPECT_EQ(recorder.error_for(2), "");
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.expired_running, 1u) << stats.to_line();
  EXPECT_EQ(stats.rejected_expired, 0u) << stats.to_line();
  EXPECT_EQ(stats.cancelled, 0u) << stats.to_line();
  EXPECT_EQ(stats.completed, 1u) << stats.to_line();
  EXPECT_EQ(stats.exec_timeouts, 0u) << stats.to_line();  // deadline cut
  EXPECT_EQ(stats.compiles, 1u) << stats.to_line();  // session survived
  EXPECT_EQ(stats.hits, 1u) << stats.to_line();
}

TEST(SchedulerService, ExecTimeoutCapCutsARunawayRunWithoutADeadline) {
  // `exec_timeout_ms` is the deadline-less backstop: the budget starts
  // at claim time and the watchdog cuts the run the same cooperative
  // way. While the run is wedged, health must show it aging
  // (`longest_running_ms`) with the pool intact (`workers_alive`).
  std::mutex log_mutex;
  std::vector<std::string> log_lines;
  SamplingService service({.num_workers = 1,
                           .max_frame_payload = 256,
                           .exec_timeout_ms = 500,
                           .watchdog_log =
                               [&](std::string_view line) {
                                 const std::lock_guard<std::mutex> lock(
                                     log_mutex);
                                 log_lines.emplace_back(line);
                               }});
  CompletionRecorder recorder;
  Latch parked;
  SampleRequest runaway = SampleRequest::sample(kCircuitB, 200'000);
  runaway.format = SampleFormat::kB8;  // no deadline_ms: only the cap cuts
  service.submit(1, runaway, parking_emit(parked, recorder.fn(1)));
  parked.wait_for_waiter();
  const auto poll_deadline = Clock::now() + std::chrono::seconds(10);
  for (;;) {
    const ServiceHealth health = service.health();
    const ServiceStats stats = service.stats();
    if (health.workers_alive == 1 && health.longest_running_ms >= 1 &&
        stats.exec_timeouts == 1 &&
        logged_event(log_mutex, log_lines, "exec_timeout")) {
      break;
    }
    ASSERT_LT(Clock::now(), poll_deadline)
        << stats.to_line() << " | " << health.to_line();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  parked.release();

  SampleRequest after = SampleRequest::sample(kCircuitB, 100);
  service.submit(2, after, recorder.fn(2));
  service.drain();

  const std::string error = recorder.error_for(1);
  EXPECT_NE(error.find("wall-clock cap exceeded"), std::string::npos)
      << error;
  EXPECT_EQ(recorder.error_for(2), "");  // service keeps serving
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.exec_timeouts, 1u) << stats.to_line();
  EXPECT_EQ(stats.expired_running, 1u) << stats.to_line();
  EXPECT_EQ(stats.rejected_expired, 0u) << stats.to_line();
  EXPECT_EQ(stats.completed, 1u) << stats.to_line();
  EXPECT_EQ(stats.workers_alive, 1u) << stats.to_line();
}

TEST(SchedulerService, CancelQueuedRequestNeverRuns) {
  SamplingService service({.num_workers = 1});
  Latch latch;
  CompletionRecorder recorder;
  submit_blocker(service, latch, recorder);

  SampleRequest queued = SampleRequest::sample(kCircuitA, 100);
  const std::uint64_t ticket = service.submit(2, queued, recorder.fn(2));
  EXPECT_TRUE(service.cancel(ticket));
  EXPECT_FALSE(service.cancel(ticket));  // second cancel: already gone
  // The error frame arrives immediately, before the blocker finishes.
  EXPECT_EQ(recorder.order(), (std::vector<std::uint64_t>{2}));
  EXPECT_NE(recorder.error_for(2).find("cancelled"), std::string::npos);

  latch.release();
  service.drain();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cancelled, 1u) << stats.to_line();
  EXPECT_EQ(stats.compiles, 1u) << stats.to_line();  // blocker only
  EXPECT_FALSE(service.cancel(ticket));
  EXPECT_FALSE(service.cancel(9999));  // unknown ticket
}

TEST(SchedulerService, CancelMidStreamStopsAtChunkBoundaryAndSessionSurvives) {
  // Small frames force many emit calls per run; the emit callback
  // cancels its own request after the first data frame, so the stream
  // must end with a "cancelled" error frame instead of running its
  // remaining shards — and the cached session must stay fully usable.
  SamplingService service({.num_workers = 1, .max_frame_payload = 256});
  std::uint64_t ticket = 0;
  std::mutex ticket_mutex;
  std::atomic<int> data_frames{0};
  std::atomic<bool> cancel_result{false};
  Latch done;
  // 200k shots = 25 shards: plenty of boundaries after the first chunk.
  SampleRequest big = SampleRequest::sample(kCircuitB, 200'000);
  big.format = SampleFormat::kB8;
  std::string final_error;
  std::mutex error_mutex;
  const FrameFn emit = [&](const FrameHeader& header,
                           std::string_view payload) {
    if ((header.flags & kFrameLast) == 0) {
      if (data_frames.fetch_add(1) == 0) {
        const std::lock_guard<std::mutex> lock(ticket_mutex);
        cancel_result.store(service.cancel(ticket));
      }
      return;
    }
    {
      const std::lock_guard<std::mutex> lock(error_mutex);
      final_error = (header.flags & kFrameError) != 0 ? std::string(payload)
                                                      : std::string();
    }
    done.release();
  };
  {
    const std::lock_guard<std::mutex> lock(ticket_mutex);
    ticket = service.submit(1, big, emit);
  }
  done.wait();
  service.drain();

  EXPECT_TRUE(cancel_result.load());
  {
    const std::lock_guard<std::mutex> lock(error_mutex);
    EXPECT_NE(final_error.find("cancelled"), std::string::npos)
        << final_error;
  }
  // Far fewer frames than the full 200 KB / 256 B stream would need.
  EXPECT_LT(data_frames.load(), 100);

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cancelled, 1u) << stats.to_line();

  // The session survived the abandoned stream: a re-request hits the
  // cache and the bits match the direct path exactly.
  SampleRequest again = SampleRequest::sample(kCircuitB, 5000);
  again.task.seed = 3;
  std::string payload;
  std::mutex payload_mutex;
  service.submit(2, again,
                 [&](const FrameHeader& header, std::string_view bytes) {
                   const std::lock_guard<std::mutex> lock(payload_mutex);
                   if ((header.flags & kFrameLast) == 0) {
                     payload += std::string(bytes);
                   } else {
                     EXPECT_EQ(header.flags, kFrameLast);
                   }
                 });
  service.drain();
  stats = service.stats();
  EXPECT_EQ(stats.hits, 1u) << stats.to_line();
  EXPECT_EQ(stats.misses, 1u) << stats.to_line();
  EXPECT_EQ(payload,
            direct_output(kCircuitB, SampleTask::measurements(5000).with_seed(3),
                          SampleFormat::k01));
}

TEST(SchedulerService, CancelOfLastQueuedJobWakesConcurrentDrain) {
  // Removing the last queued job via cancel() is a quiescence
  // transition: a drain() sleeping through it must be notified
  // (regression: cancel() only notified queue_space_). The race —
  // cancel beating the worker's pop — is hit probabilistically, so
  // iterate; without the notify the drain below deadlocks.
  SamplingService service({.num_workers = 1});
  const FrameFn devnull = [](const FrameHeader&, std::string_view) {};
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t ticket =
        service.submit(1, SampleRequest::sample(kCircuitB, 64), devnull);
    service.cancel(ticket);  // may or may not beat the worker's pop
    auto drained = std::async(std::launch::async, [&] { service.drain(); });
    ASSERT_EQ(drained.wait_for(std::chrono::seconds(30)),
              std::future_status::ready)
        << "drain() missed the cancel wakeup (iteration " << i << ")";
  }
}

TEST(SchedulerService, TrySubmitRejectsOnlyWhenFull) {
  SamplingService service({.num_workers = 1, .queue_capacity = 1});
  Latch latch;
  CompletionRecorder recorder;
  submit_blocker(service, latch, recorder);

  // Worker busy; capacity-1 queue takes one request, the next is shed.
  const std::uint64_t queued =
      service.try_submit(2, SampleRequest::sample(kCircuitB, 64),
                         recorder.fn(2));
  EXPECT_NE(queued, 0u);
  EXPECT_EQ(service.try_submit(3, SampleRequest::sample(kCircuitB, 64),
                               recorder.fn(3)),
            0u);
  latch.release();
  service.drain();
  EXPECT_EQ(recorder.order(), (std::vector<std::uint64_t>{1, 2}));
}

TEST(SchedulerService, StatsLineCarriesQueueMetrics) {
  SamplingService service({.num_workers = 1});
  const std::string line = service.stats().to_line();
  for (const char* key :
       {"queue_depth=", "queue_peak=", "rejected_expired=", "cancelled=",
        "served_high=", "served_normal=", "served_low="}) {
    EXPECT_NE(line.find(key), std::string::npos) << line;
  }
}

}  // namespace
}  // namespace symphase
