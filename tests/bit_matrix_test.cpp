#include "bitvec/bit_matrix.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace symphase {
namespace {

TEST(BitMatrix, ZeroInitialized) {
  BitMatrix m(5, 70);
  EXPECT_EQ(m.rows(), 5u);
  EXPECT_EQ(m.cols(), 70u);
  EXPECT_EQ(m.count_ones(), 0u);
  for (std::size_t r = 0; r < 5; ++r) {
    EXPECT_TRUE(m.row_is_zero(r));
  }
}

TEST(BitMatrix, RowsAreCacheLineAligned) {
  BitMatrix m(3, 1);
  EXPECT_EQ(m.words_per_row() % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.row(0)) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.row(1)) % 64, 0u);
}

TEST(BitMatrix, SetGetFlip) {
  BitMatrix m(4, 100);
  m.set(0, 0, true);
  m.set(3, 99, true);
  m.set(2, 64, true);
  EXPECT_TRUE(m.get(0, 0));
  EXPECT_TRUE(m.get(3, 99));
  EXPECT_TRUE(m.get(2, 64));
  EXPECT_FALSE(m.get(1, 50));
  m.flip(0, 0);
  EXPECT_FALSE(m.get(0, 0));
  EXPECT_EQ(m.count_ones(), 2u);
}

TEST(BitMatrix, Identity) {
  const BitMatrix id = BitMatrix::identity(65);
  EXPECT_EQ(id.count_ones(), 65u);
  for (std::size_t i = 0; i < 65; ++i) {
    EXPECT_TRUE(id.get(i, i));
  }
}

TEST(BitMatrix, XorRow) {
  BitMatrix m(2, 128);
  m.set(0, 5, true);
  m.set(0, 100, true);
  m.set(1, 100, true);
  m.xor_row_into(0, 1);
  EXPECT_TRUE(m.get(1, 5));
  EXPECT_FALSE(m.get(1, 100));
  // Row 0 untouched.
  EXPECT_TRUE(m.get(0, 5));
  EXPECT_TRUE(m.get(0, 100));
}

TEST(BitMatrix, SwapAndClearRows) {
  BitMatrix m(3, 10);
  m.set(0, 1, true);
  m.set(2, 9, true);
  m.swap_rows(0, 2);
  EXPECT_TRUE(m.get(2, 1));
  EXPECT_TRUE(m.get(0, 9));
  EXPECT_FALSE(m.get(0, 1));
  m.clear_row(0);
  EXPECT_TRUE(m.row_is_zero(0));
  EXPECT_FALSE(m.row_is_zero(2));
}

TEST(BitMatrix, TransposeSmall) {
  BitMatrix m(2, 3);
  m.set(0, 1, true);
  m.set(1, 2, true);
  const BitMatrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_TRUE(t.get(1, 0));
  EXPECT_TRUE(t.get(2, 1));
  EXPECT_EQ(t.count_ones(), 2u);
}

TEST(BitMatrix, MultiplyByIdentity) {
  Rng rng(3);
  const BitMatrix m = BitMatrix::random(20, 77, rng);
  const BitMatrix id = BitMatrix::identity(77);
  EXPECT_EQ(m.multiply(id), m);
  const BitMatrix id20 = BitMatrix::identity(20);
  EXPECT_EQ(id20.multiply(m), m);
}

TEST(BitMatrix, MultiplyMatchesNaive) {
  Rng rng(11);
  const BitMatrix a = BitMatrix::random(17, 33, rng);
  const BitMatrix b = BitMatrix::random(33, 29, rng);
  const BitMatrix c = a.multiply(b);
  for (std::size_t r = 0; r < 17; ++r) {
    for (std::size_t col = 0; col < 29; ++col) {
      bool expected = false;
      for (std::size_t k = 0; k < 33; ++k) {
        expected ^= a.get(r, k) && b.get(k, col);
      }
      ASSERT_EQ(c.get(r, col), expected) << r << "," << col;
    }
  }
}

TEST(BitMatrix, MultiplyShapeMismatchThrows) {
  BitMatrix a(3, 4);
  BitMatrix b(5, 3);
  EXPECT_THROW(a.multiply(b), std::invalid_argument);
}

TEST(BitMatrix, RandomIsSeedDeterministic) {
  Rng rng1(42);
  Rng rng2(42);
  EXPECT_EQ(BitMatrix::random(10, 100, rng1), BitMatrix::random(10, 100, rng2));
}

TEST(BitMatrix, RandomKeepsTailZero) {
  Rng rng(5);
  const BitMatrix m = BitMatrix::random(4, 67, rng);
  // Bits beyond column 66 in the last used word must be zero: count via
  // the raw words.
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(m.row(r)[1] & ~tail_mask(67), 0u);
  }
}

class BitMatrixTransposeParam
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(BitMatrixTransposeParam, DoubleTransposeIsIdentity) {
  const auto [rows, cols] = GetParam();
  Rng rng(rows * 1000 + cols);
  const BitMatrix m = BitMatrix::random(rows, cols, rng);
  EXPECT_EQ(m.transposed().transposed(), m);
}

TEST_P(BitMatrixTransposeParam, TransposeMatchesNaive) {
  const auto [rows, cols] = GetParam();
  Rng rng(rows * 7 + cols);
  const BitMatrix m = BitMatrix::random(rows, cols, rng);
  const BitMatrix t = m.transposed();
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      ASSERT_EQ(m.get(r, c), t.get(c, r));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BitMatrixTransposeParam,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{1, 64},
                      std::pair<std::size_t, std::size_t>{64, 1},
                      std::pair<std::size_t, std::size_t>{64, 64},
                      std::pair<std::size_t, std::size_t>{65, 63},
                      std::pair<std::size_t, std::size_t>{128, 256},
                      std::pair<std::size_t, std::size_t>{100, 300},
                      std::pair<std::size_t, std::size_t>{513, 129}));

TEST(BitMatrixRegion, TransposeRegionMatchesFull) {
  Rng rng(99);
  const BitMatrix src = BitMatrix::random(130, 200, rng);
  BitMatrix dst(200, 130);
  transpose_region(src, 130, 200, dst);
  EXPECT_EQ(dst, src.transposed());
}

TEST(BitMatrixRegion, PartialRegion) {
  Rng rng(100);
  BitMatrix src = BitMatrix::random(128, 128, rng);
  // Zero outside the region so the partial transpose is comparable.
  for (std::size_t r = 64; r < 128; ++r) {
    src.clear_row(r);
  }
  BitMatrix dst(128, 128);
  transpose_region(src, 64, 128, dst);
  for (std::size_t r = 0; r < 64; ++r) {
    for (std::size_t c = 0; c < 128; ++c) {
      ASSERT_EQ(dst.get(c, r), src.get(r, c));
    }
  }
}

}  // namespace
}  // namespace symphase
