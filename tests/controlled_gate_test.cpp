// Tests for record-controlled Pauli gates (COND_X/COND_Y/COND_Z) — the
// paper's §6 conditional-Pauli extension for dynamic circuits — across
// all four backends.

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/generators.hpp"
#include "core/symphase.hpp"
#include "sampler/resample.hpp"
#include "statevector/state_vector.hpp"
#include "tableau/stabilizer_simulator.hpp"

namespace symphase {
namespace {

using Expr = std::vector<std::uint32_t>;

double row_mean(const BitMatrix& m, std::size_t row) {
  std::size_t ones = 0;
  for (std::size_t w = 0; w < words_for_bits(m.cols()); ++w) {
    ones += static_cast<std::size_t>(popcount(m.row(row)[w]));
  }
  return static_cast<double>(ones) / static_cast<double>(m.cols());
}

/// The canonical dynamic circuit: quantum teleportation of |1> with
/// measurement-controlled corrections. Qubit 0 carries the message,
/// 1 and 2 a Bell pair; after the Bell measurement and the COND_X /
/// COND_Z corrections, qubit 2 must read 1 deterministically.
const char* kTeleport = R"(
  X 0
  H 1
  CNOT 1 2
  CNOT 0 1
  H 0
  M 0 1
  COND_X rec[-1] 2
  COND_Z rec[-2] 2
  M 2
)";

TEST(ControlledGates, ParserRoundTrip) {
  const Circuit c = parse_circuit("M 0\nCOND_X rec[-1] 1\nM 1");
  ASSERT_EQ(c.instructions().size(), 3u);
  const Instruction& cond = c.instructions()[1];
  EXPECT_EQ(cond.type, GateType::COND_X);
  ASSERT_EQ(cond.targets.size(), 2u);
  EXPECT_TRUE(is_rec_target(cond.targets[0]));
  EXPECT_EQ(rec_lookback(cond.targets[0]), 1u);
  EXPECT_EQ(cond.targets[1], 1u);
  EXPECT_EQ(parse_circuit(c.to_text()), c);
  EXPECT_NE(c.to_text().find("rec[-1]"), std::string::npos);
}

TEST(ControlledGates, ParserRejectsMalformed) {
  EXPECT_THROW(parse_circuit("COND_X 0 1"), std::invalid_argument);
  EXPECT_THROW(parse_circuit("M 0\nCOND_X rec[1] 0"), std::invalid_argument);
  EXPECT_THROW(parse_circuit("M 0\nCOND_X rec[-0] 0"), std::invalid_argument);
  EXPECT_THROW(parse_circuit("M 0\nCOND_X rec[-1 0"), std::invalid_argument);
  EXPECT_THROW(parse_circuit("M 0\nCOND_X rec[-1]"), std::invalid_argument);
  EXPECT_THROW(parse_circuit("H rec[-1]"), std::invalid_argument);
  EXPECT_THROW(parse_circuit("M 0\nCOND_X rec[-1] rec[-1]"),
               std::invalid_argument);
}

TEST(ControlledGates, LookbackBeyondRecordThrowsAtRun) {
  const Circuit c = parse_circuit("M 0\nCOND_X rec[-2] 1\nM 1");
  EXPECT_THROW(CompiledSampler::compile(c), std::invalid_argument);
  StabilizerSimulator<BlockedTableau> sim(2, 1);
  EXPECT_THROW(sim.run_circuit(c), std::invalid_argument);
}

TEST(ControlledGates, TeleportationIsDeterministicSymbolically) {
  const Circuit c = parse_circuit(kTeleport);
  const CompiledSampler sampler = CompiledSampler::compile(c);
  ASSERT_EQ(sampler.num_measurements(), 3u);
  // The Bell measurements are random coins; the corrected output is the
  // constant 1 — every coin cancels symbolically.
  EXPECT_TRUE(sampler.expressions()[0].was_random);
  EXPECT_TRUE(sampler.expressions()[1].was_random);
  EXPECT_EQ(sampler.expressions()[2].symbols, Expr{0});
  EXPECT_FALSE(sampler.expressions()[2].was_random);
  EXPECT_DOUBLE_EQ(sampler.outcome_probability(2), 1.0);
}

TEST(ControlledGates, TeleportationAllBackendsAgree) {
  const Circuit c = parse_circuit(kTeleport);
  // Symbolic sampler.
  const BitMatrix sym = sample_circuit(c, 2000, 3);
  EXPECT_DOUBLE_EQ(row_mean(sym, 2), 1.0);
  // Frame sampler.
  FrameSimulator frame(c, 4);
  const BitMatrix fr = frame.sample(2000, 5);
  EXPECT_DOUBLE_EQ(row_mean(fr, 2), 1.0);
  // Concrete tableau re-simulation.
  const BitMatrix re = sample_by_resimulation(c, 64, 6);
  EXPECT_DOUBLE_EQ(row_mean(re, 2), 1.0);
  // State-vector oracle.
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    StateVector sv(3);
    Rng rng(seed);
    std::vector<bool> record;
    sv.run_circuit(c, rng, record);
    EXPECT_TRUE(record[2]);
  }
}

TEST(ControlledGates, TeleportSuperpositionState) {
  // Teleport |+i> = S H |0>: verify via the oracle that the output qubit
  // is exactly S H |0> for all four Bell outcomes.
  const Circuit c = parse_circuit(R"(
    H 0
    S 0
    H 1
    CNOT 1 2
    CNOT 0 1
    H 0
    M 0 1
    COND_X rec[-1] 2
    COND_Z rec[-2] 2
  )");
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    StateVector sv(3);
    Rng rng(seed);
    std::vector<bool> record;
    sv.run_circuit(c, rng, record);
    // Output qubit must be stabilized by Y_2 (the +i eigenstate).
    EXPECT_TRUE(
        sv.is_stabilized_by(PauliString::single(3, 2, SinglePauli::Y)));
  }
}

TEST(ControlledGates, CondZInvisibleInZBasis) {
  const Circuit c = parse_circuit("H 0\nM 0\nCOND_Z rec[-1] 1\nM 1");
  const CompiledSampler sampler = CompiledSampler::compile(c);
  EXPECT_EQ(sampler.expressions()[1].symbols, Expr{});
}

TEST(ControlledGates, CondXCopiesRecordBit) {
  // m2 = m1 exactly: the conditional X turns qubit 1 into a copy.
  const Circuit c = parse_circuit("H 0\nM 0\nCOND_X rec[-1] 1\nM 1");
  const CompiledSampler sampler = CompiledSampler::compile(c);
  EXPECT_EQ(sampler.expressions()[0].symbols,
            sampler.expressions()[1].symbols);
  const BitMatrix samples = sampler.sample(4096, 9);
  for (std::size_t w = 0; w < samples.words_per_row(); ++w) {
    EXPECT_EQ(samples.row(0)[w], samples.row(1)[w]);
  }
}

TEST(ControlledGates, CondYActsAsXAndZ) {
  // COND_Y == COND_X then COND_Z on the same control, as expressions.
  const Circuit via_y =
      parse_circuit("H 0\nM 0\nH 1\nCOND_Y rec[-1] 1\nH 1\nM 1\nM 1");
  const Circuit via_xz = parse_circuit(
      "H 0\nM 0\nH 1\nCOND_X rec[-1] 1\nCOND_Z rec[-1] 1\nH 1\nM 1\nM 1");
  const CompiledSampler a = CompiledSampler::compile(via_y);
  const CompiledSampler b = CompiledSampler::compile(via_xz);
  EXPECT_EQ(a.expressions(), b.expressions());
}

TEST(ControlledGates, EntangledControlPropagation) {
  // Measure half a Bell pair, feed the outcome forward as a correction
  // on a third qubit that was X-correlated with the same coin.
  const Circuit c = parse_circuit(R"(
    H 0
    CNOT 0 1
    CNOT 0 2
    M 0
    COND_X rec[-1] 1
    COND_X rec[-1] 2
    M 1 2
  )");
  const CompiledSampler sampler = CompiledSampler::compile(c);
  // GHZ: m1 = coin; corrections cancel the correlation -> always 0.
  EXPECT_EQ(sampler.expressions()[1].symbols, Expr{});
  EXPECT_EQ(sampler.expressions()[2].symbols, Expr{});
}

TEST(ControlledGates, FuzzSymPhaseVsFrameDistributions) {
  Rng rng(555);
  for (int trial = 0; trial < 6; ++trial) {
    const Circuit c = random_fuzz_circuit(5, 80, 0.1, rng);
    const CompiledSampler sym = CompiledSampler::compile(c);
    constexpr std::size_t kShots = 40000;
    const BitMatrix a = sym.sample(kShots, 10 + static_cast<std::uint64_t>(trial));
    FrameSimulator frame(c, 20 + static_cast<std::uint64_t>(trial));
    const BitMatrix b = frame.sample(kShots, 30 + static_cast<std::uint64_t>(trial));
    ASSERT_EQ(a.rows(), b.rows());
    for (std::size_t k = 0; k < a.rows(); ++k) {
      const double pa = row_mean(a, k);
      const double pb = row_mean(b, k);
      const double sigma =
          std::sqrt(std::max(pa * (1 - pa), 1e-6) / kShots);
      ASSERT_NEAR(pa, pb, 10 * sigma + 3e-3)
          << "trial " << trial << " measurement " << k;
      ASSERT_NEAR(pa, sym.outcome_probability(k), 5 * sigma + 2e-3);
    }
  }
}

TEST(ControlledGates, StatsCountThemAsGates) {
  const Circuit c = parse_circuit("M 0\nCOND_X rec[-1] 1 rec[-1] 2");
  EXPECT_EQ(c.stats().num_gates, 2u);
  EXPECT_EQ(c.num_qubits(), 3u);
}

}  // namespace
}  // namespace symphase
