#include "circuit/generators.hpp"

#include <gtest/gtest.h>

#include <set>

namespace symphase {
namespace {

TEST(LayeredRandom, RespectsShapeParameters) {
  LayeredRandomCircuitOptions opt;
  opt.num_qubits = 40;
  opt.num_layers = 10;
  opt.cnot_pairs_per_layer = 5;
  opt.measure_fraction = 0.05;
  Rng rng(1);
  const Circuit c = layered_random_circuit(opt, rng);
  EXPECT_EQ(c.num_qubits(), 40u);
  const CircuitStats s = c.stats();
  // Each layer: 40 single-qubit gates + 5 CNOTs; 2 measured (5% of 40).
  EXPECT_EQ(s.num_gates, 10u * (40 + 5));
  EXPECT_EQ(s.num_measurements, 10u * 2 + 40u);
  EXPECT_EQ(s.num_noise_sites, 0u);
}

TEST(LayeredRandom, HalfNPairs) {
  LayeredRandomCircuitOptions opt;
  opt.num_qubits = 20;
  opt.num_layers = 4;
  opt.half_n_cnot_pairs = true;
  Rng rng(2);
  const Circuit c = layered_random_circuit(opt, rng);
  EXPECT_EQ(c.stats().num_gates, 4u * (20 + 10));
}

TEST(LayeredRandom, DepolarizeNoiseCounts) {
  LayeredRandomCircuitOptions opt;
  opt.num_qubits = 10;
  opt.num_layers = 3;
  opt.cnot_pairs_per_layer = 2;
  opt.depolarize_probability = 0.01;
  Rng rng(3);
  const Circuit c = layered_random_circuit(opt, rng);
  EXPECT_EQ(c.stats().num_noise_sites, 3u * 10u);
}

TEST(LayeredRandom, CnotPairsAreDisjointWithinLayer) {
  LayeredRandomCircuitOptions opt;
  opt.num_qubits = 30;
  opt.num_layers = 20;
  opt.half_n_cnot_pairs = true;
  Rng rng(4);
  const Circuit c = layered_random_circuit(opt, rng);
  for (const Instruction& inst : c.instructions()) {
    if (inst.type != GateType::CNOT) {
      continue;
    }
    std::set<std::uint32_t> seen(inst.targets.begin(), inst.targets.end());
    EXPECT_EQ(seen.size(), inst.targets.size());
  }
}

TEST(LayeredRandom, DeterministicInSeed) {
  LayeredRandomCircuitOptions opt;
  opt.num_qubits = 12;
  opt.num_layers = 6;
  Rng rng1(77);
  Rng rng2(77);
  EXPECT_EQ(layered_random_circuit(opt, rng1),
            layered_random_circuit(opt, rng2));
}

TEST(RepetitionCode, StructureAndRecordLayout) {
  RepetitionCodeOptions opt;
  opt.distance = 5;
  opt.rounds = 3;
  const Circuit c = repetition_code_memory(opt);
  EXPECT_EQ(c.num_qubits(), 9u);  // 5 data + 4 ancilla
  // 3 rounds x 4 syndrome measurements + 5 final data measurements.
  EXPECT_EQ(c.num_measurements(), 3u * 4 + 5u);
  EXPECT_EQ(c.stats().num_noise_sites, 0u);
}

TEST(RepetitionCode, NoiseKnobs) {
  RepetitionCodeOptions opt;
  opt.distance = 3;
  opt.rounds = 2;
  opt.data_error_probability = 0.1;
  opt.measurement_error_probability = 0.05;
  const Circuit c = repetition_code_memory(opt);
  // Per round: 3 data X errors + 2 ancilla X errors.
  EXPECT_EQ(c.stats().num_noise_sites, 2u * (3 + 2));
  opt.gate_error_probability = 0.01;
  const Circuit c2 = repetition_code_memory(opt);
  // Adds DEPOLARIZE2 per CNOT: 4 CNOTs/round -> 8 two-qubit sites/round
  // counted as 2 single-qubit fault sites each.
  EXPECT_EQ(c2.stats().num_noise_sites, 2u * (3 + 2) + 2u * 4 * 2);
}

TEST(RepetitionCode, ValidatesParameters) {
  RepetitionCodeOptions opt;
  opt.distance = 1;
  EXPECT_THROW(repetition_code_memory(opt), std::invalid_argument);
  opt.distance = 3;
  opt.rounds = 0;
  EXPECT_THROW(repetition_code_memory(opt), std::invalid_argument);
}

TEST(Ghz, Structure) {
  const Circuit c = ghz_circuit(5);
  EXPECT_EQ(c.num_qubits(), 5u);
  EXPECT_EQ(c.stats().num_gates, 5u);  // 1 H + 4 CNOT
  EXPECT_EQ(c.num_measurements(), 5u);
}

TEST(Figure1, MatchesPaperShape) {
  const Circuit c = figure1_circuit(0.01);
  EXPECT_EQ(c.num_qubits(), 4u);
  EXPECT_EQ(c.num_measurements(), 4u);
  const CircuitStats s = c.stats();
  EXPECT_EQ(s.num_noise_sites, 4u);  // Z^s1, X^s2, X^s3, X^s4
  EXPECT_EQ(s.num_gates, 8u);        // 2 H + 6 CNOT
}

TEST(FuzzCircuit, AlwaysEndsWithMeasurement) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const Circuit c = random_fuzz_circuit(6, 30, 0.1, rng);
    EXPECT_GE(c.num_measurements(), 1u);
    EXPECT_LE(c.num_qubits(), 6u);
  }
}

TEST(FuzzCircuit, NoNoiseWhenDisabled) {
  Rng rng(6);
  const Circuit c = random_fuzz_circuit(5, 200, 0.1, rng, false);
  EXPECT_EQ(c.stats().num_noise_sites, 0u);
}

}  // namespace
}  // namespace symphase
