// Thread-determinism contract of the shot-sharded samplers: the same
// seed must yield bit-identical sample matrices no matter how many
// worker threads process the shards. Also covers the counter-based
// Rng::stream fork and the parallel_for primitive they build on.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "circuit/generators.hpp"
#include "circuit/parser.hpp"
#include "circuit/surface_code.hpp"
#include "common/parallel.hpp"
#include "core/symphase.hpp"

namespace symphase {
namespace {

// Enough shots to span several shards (kShardWords words each), plus a
// ragged tail word.
constexpr std::size_t kShots = 3 * FrameSimulator::kShardWords * kWordBits +
                               777;

Circuit noisy_test_circuit() {
  LayeredRandomCircuitOptions opt;
  opt.num_qubits = 24;
  opt.num_layers = 12;
  opt.cnot_pairs_per_layer = 5;
  opt.depolarize_probability = 0.01;
  Rng rng(99);
  return layered_random_circuit(opt, rng);
}

void expect_tail_clear(const BitMatrix& m, std::size_t cols) {
  if (cols % kWordBits == 0) {
    return;
  }
  const std::size_t last = words_for_bits(cols) - 1;
  for (std::size_t r = 0; r < m.rows(); ++r) {
    EXPECT_EQ(m.row(r)[last] & ~tail_mask(cols), 0u) << "row " << r;
  }
}

TEST(ParallelSampling, FrameSimulatorIdenticalAcrossThreadCounts) {
  const Circuit circuit = noisy_test_circuit();
  const FrameSimulator sim(circuit, 5);
  const BitMatrix one = sim.sample(kShots, 17, /*num_threads=*/1);
  const BitMatrix two = sim.sample(kShots, 17, /*num_threads=*/2);
  const BitMatrix eight = sim.sample(kShots, 17, /*num_threads=*/8);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
  expect_tail_clear(one, kShots);
  // Different seeds still differ (the shard streams are not degenerate).
  EXPECT_FALSE(one == sim.sample(kShots, 18, 8));
}

TEST(ParallelSampling, FrameSimulatorConditionalGatesDeterministic) {
  // Record-conditioned corrections read back earlier output words; make
  // sure that path is also shard-local and thread-stable.
  const Circuit circuit = parse_circuit(
      "H 0\n"
      "CNOT 0 1\n"
      "X_ERROR(0.05) 0\n"
      "M 0\n"
      "COND_X rec[-1] 1\n"
      "M 1\n"
      "MR 0\n"
      "M 0\n");
  const FrameSimulator sim(circuit, 3);
  const BitMatrix one = sim.sample(kShots, 23, 1);
  const BitMatrix eight = sim.sample(kShots, 23, 8);
  EXPECT_EQ(one, eight);
}

TEST(ParallelSampling, SymPhaseSamplerIdenticalAcrossThreadCounts) {
  const Circuit circuit = noisy_test_circuit();
  const CompiledSampler sampler = CompiledSampler::compile(circuit);
  const BitMatrix one = sampler.sample(kShots, 31, /*num_threads=*/1);
  const BitMatrix two = sampler.sample(kShots, 31, /*num_threads=*/2);
  const BitMatrix eight = sampler.sample(kShots, 31, /*num_threads=*/8);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
  expect_tail_clear(one, kShots);
}

TEST(ParallelSampling, DetectionEventsIdenticalAcrossThreadCounts) {
  SurfaceCodeOptions sc;
  sc.distance = 3;
  sc.rounds = 3;
  sc.data_depolarization = 0.01;
  sc.measurement_flip_probability = 0.01;
  const Circuit circuit = surface_code_memory(sc);
  const FrameSimulator frame(circuit, 7);
  const auto a = frame.sample_detection_events(kShots, 41, 1);
  const auto b = frame.sample_detection_events(kShots, 41, 8);
  EXPECT_EQ(a.detectors, b.detectors);
  EXPECT_EQ(a.observables, b.observables);

  const CompiledSampler sym = CompiledSampler::compile(circuit);
  const auto c = sym.sample_detection_events(kShots, 43, 1);
  const auto d = sym.sample_detection_events(kShots, 43, 8);
  EXPECT_EQ(c.detectors, d.detectors);
  EXPECT_EQ(c.observables, d.observables);
}

TEST(ParallelSampling, SubShardBatchStillWorks) {
  // Fewer shots than one shard: runs inline on any thread count.
  const Circuit circuit = noisy_test_circuit();
  const FrameSimulator sim(circuit, 5);
  const BitMatrix one = sim.sample(100, 13, 1);
  const BitMatrix eight = sim.sample(100, 13, 8);
  EXPECT_EQ(one, eight);
  expect_tail_clear(one, 100);
  EXPECT_EQ(one.cols(), 100u);
}

TEST(RngStream, DoesNotAdvanceParentState) {
  Rng a(12345);
  Rng b(12345);
  (void)a.stream(0);
  (void)a.stream(7);
  EXPECT_EQ(a(), b());  // parent stream untouched by stream() calls
}

TEST(RngStream, DistinctIdsGiveDistinctStreams) {
  const Rng root(777);
  Rng s0 = root.stream(0);
  Rng s1 = root.stream(1);
  Rng s0_again = root.stream(0);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t w0 = s0();
    any_diff |= (w0 != s1());
    EXPECT_EQ(w0, s0_again());
  }
  EXPECT_TRUE(any_diff);
}

TEST(ParallelFor, CoversEveryIndexOnce) {
  for (const std::size_t threads : {1ul, 2ul, 8ul}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) {
      h = 0;
    }
    parallel_for(hits.size(), threads,
                 [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(64, 4,
                   [](std::size_t i) {
                     if (i == 13) {
                       throw std::runtime_error("boom");
                     }
                   }),
      std::runtime_error);
}

}  // namespace
}  // namespace symphase
