// HTTP parser hardening, in the style of wire_test.cpp: every random
// sequence is driven by a fixed-seed std::mt19937_64, so failures
// reproduce. The properties pinned here are the ones the gateway leans
// on — the parser never crashes or reads past its buffer on hostile
// bytes (run under ASan/UBSan in CI), a malformed stream always
// poisons the parser with a mappable status (400/413/431/501/505),
// and a valid stream parses identically no matter how it is torn
// across feed() calls.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "http/http_parser.hpp"
#include "http/json.hpp"

namespace symphase {
namespace {

/// Feeds `bytes` torn at the given boundaries and collects every
/// completed request.
std::vector<HttpRequest> parse_all(HttpParser& parser, std::string_view bytes,
                                   std::size_t slice) {
  std::vector<HttpRequest> requests;
  for (std::size_t offset = 0; offset < bytes.size(); offset += slice) {
    parser.feed(bytes.substr(offset, slice));
    HttpRequest request;
    while (parser.next(request)) {
      requests.push_back(std::move(request));
    }
  }
  HttpRequest request;
  while (parser.next(request)) {
    requests.push_back(std::move(request));
  }
  return requests;
}

TEST(HttpParser, SimpleGetParses) {
  HttpParser parser;
  parser.feed("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  HttpRequest request;
  ASSERT_TRUE(parser.next(request));
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/healthz");
  EXPECT_EQ(request.minor_version, 1);
  EXPECT_TRUE(request.keep_alive);
  ASSERT_NE(request.header("host"), nullptr);
  EXPECT_EQ(*request.header("host"), "x");
  EXPECT_FALSE(parser.next(request));
  EXPECT_FALSE(parser.failed());
  EXPECT_FALSE(parser.mid_request());
}

TEST(HttpParser, ContentLengthBodyAndBareLfTolerated) {
  HttpParser parser;
  parser.feed("POST /v1/sample HTTP/1.1\nContent-Length: 5\n\nhello");
  HttpRequest request;
  ASSERT_TRUE(parser.next(request));
  EXPECT_EQ(request.body, "hello");
}

TEST(HttpParser, ChunkedBodyDecodes) {
  HttpParser parser;
  parser.feed(
      "POST /v1/sample HTTP/1.1\r\n"
      "Transfer-Encoding: chunked\r\n\r\n"
      "4\r\nwiki\r\n5\r\npedia\r\n0\r\n\r\n");
  HttpRequest request;
  ASSERT_TRUE(parser.next(request));
  EXPECT_EQ(request.body, "wikipedia");
  EXPECT_FALSE(parser.mid_request());
}

TEST(HttpParser, ChunkExtensionsAndTrailersIgnored) {
  HttpParser parser;
  parser.feed(
      "POST / HTTP/1.1\r\n"
      "Transfer-Encoding: chunked\r\n\r\n"
      "3;ext=1\r\nabc\r\n0\r\nTrailer: v\r\n\r\n");
  HttpRequest request;
  ASSERT_TRUE(parser.next(request));
  EXPECT_EQ(request.body, "abc");
}

TEST(HttpParser, PipelinedRequestsPopInOrder) {
  const std::string stream =
      "GET /a HTTP/1.1\r\n\r\n"
      "POST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nxy"
      "GET /c HTTP/1.1\r\nConnection: close\r\n\r\n";
  // Every tearing of the stream yields the same three requests.
  for (std::size_t slice = 1; slice <= stream.size(); ++slice) {
    HttpParser parser;
    const std::vector<HttpRequest> requests = parse_all(parser, stream, slice);
    ASSERT_EQ(requests.size(), 3u) << "slice=" << slice;
    EXPECT_EQ(requests[0].target, "/a");
    EXPECT_EQ(requests[1].target, "/b");
    EXPECT_EQ(requests[1].body, "xy");
    EXPECT_EQ(requests[2].target, "/c");
    EXPECT_FALSE(requests[2].keep_alive);
    EXPECT_FALSE(parser.failed()) << "slice=" << slice;
  }
}

TEST(HttpParser, TornChunkedBodyAtEveryBoundary) {
  const std::string stream =
      "POST /v1/detect HTTP/1.1\r\n"
      "Transfer-Encoding: chunked\r\n\r\n"
      "a\r\n0123456789\r\n1\r\nZ\r\n0\r\n\r\n";
  for (std::size_t slice = 1; slice <= stream.size(); ++slice) {
    HttpParser parser;
    const std::vector<HttpRequest> requests = parse_all(parser, stream, slice);
    ASSERT_EQ(requests.size(), 1u) << "slice=" << slice;
    EXPECT_EQ(requests[0].body, "0123456789Z");
  }
}

TEST(HttpParser, Http10DefaultsToClose) {
  HttpParser parser;
  parser.feed("GET / HTTP/1.0\r\n\r\n");
  HttpRequest request;
  ASSERT_TRUE(parser.next(request));
  EXPECT_FALSE(request.keep_alive);

  HttpParser keep;
  keep.feed("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
  ASSERT_TRUE(keep.next(request));
  EXPECT_TRUE(request.keep_alive);
}

TEST(HttpParser, OversizedHeadFailsWith431) {
  HttpParserLimits limits;
  limits.max_head_bytes = 128;
  HttpParser parser(limits);
  std::string head = "GET / HTTP/1.1\r\n";
  head += "X-Big: " + std::string(1024, 'a') + "\r\n\r\n";
  parser.feed(head);
  HttpRequest request;
  EXPECT_FALSE(parser.next(request));
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParser, OversizedContentLengthFailsWith413) {
  HttpParserLimits limits;
  limits.max_body_bytes = 64;
  HttpParser parser(limits);
  parser.feed("POST / HTTP/1.1\r\nContent-Length: 65\r\n\r\n");
  HttpRequest request;
  EXPECT_FALSE(parser.next(request));
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpParser, OversizedChunkedBodyFailsWith413) {
  HttpParserLimits limits;
  limits.max_body_bytes = 8;
  HttpParser parser(limits);
  parser.feed(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "6\r\nabcdef\r\n6\r\nabcdef\r\n0\r\n\r\n");
  HttpRequest request;
  EXPECT_FALSE(parser.next(request));
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpParser, ChunkSizeNearUint64MaxFailsWith413) {
  // A chunk size close to 2^64 must not wrap the cumulative cap check:
  // after a small first chunk, body.size() + 0xfffffffffffffff0
  // overflows to a tiny sum that would pass `sum > max` and let the
  // client stream unbounded data. Default limits (64 MiB cap).
  const char* cases[] = {
      // Wraps exactly past zero given the 16-byte first chunk.
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "10\r\n0123456789abcdef\r\n"
      "fffffffffffffff0\r\n",
      // Maximum representable size as the first chunk.
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "ffffffffffffffff\r\n",
  };
  for (const char* bytes : cases) {
    HttpParser parser;
    parser.feed(bytes);
    HttpRequest request;
    EXPECT_FALSE(parser.next(request)) << bytes;
    ASSERT_TRUE(parser.failed()) << bytes;
    EXPECT_EQ(parser.error_status(), 413) << bytes;
    // Poisoned: further chunk bytes must not accumulate anywhere.
    parser.feed(std::string(4096, 'x'));
    EXPECT_FALSE(parser.next(request)) << bytes;
  }
}

TEST(HttpParser, UnknownTransferEncodingFailsWith501) {
  HttpParser parser;
  parser.feed("POST / HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n");
  HttpRequest request;
  EXPECT_FALSE(parser.next(request));
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 501);
}

TEST(HttpParser, UnknownVersionFailsWith505) {
  // Anything that is not literally HTTP/1.0 or HTTP/1.1 — including a
  // case-mangled token — is an unsupported protocol version.
  for (const char* bytes :
       {"GET / HTTP/2.0\r\n\r\n", "GET / http/1.1\r\n\r\n"}) {
    HttpParser parser;
    parser.feed(bytes);
    HttpRequest request;
    EXPECT_FALSE(parser.next(request)) << bytes;
    ASSERT_TRUE(parser.failed()) << bytes;
    EXPECT_EQ(parser.error_status(), 505) << bytes;
  }
}

TEST(HttpParser, SmugglingVectorsRejected) {
  // TE + CL together is the classic request-smuggling vector.
  {
    HttpParser parser;
    parser.feed(
        "POST / HTTP/1.1\r\nContent-Length: 3\r\n"
        "Transfer-Encoding: chunked\r\n\r\n");
    HttpRequest request;
    EXPECT_FALSE(parser.next(request));
    ASSERT_TRUE(parser.failed());
    EXPECT_EQ(parser.error_status(), 400);
  }
  // Conflicting duplicate Content-Length.
  {
    HttpParser parser;
    parser.feed(
        "POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 4\r\n\r\n");
    HttpRequest request;
    EXPECT_FALSE(parser.next(request));
    EXPECT_TRUE(parser.failed());
  }
  // obs-fold continuations can hide headers from naive downstreams.
  {
    HttpParser parser;
    parser.feed("GET / HTTP/1.1\r\nX-A: 1\r\n  folded\r\n\r\n");
    HttpRequest request;
    EXPECT_FALSE(parser.next(request));
    EXPECT_TRUE(parser.failed());
  }
}

TEST(HttpParser, MalformedRequestLinesFailWith400) {
  const char* cases[] = {
      "GET\r\n\r\n",
      "GET /\r\n\r\n",
      "GET  / HTTP/1.1\r\n\r\n",
      "GET / HTTP/1.1 extra\r\n\r\n",
      "G<T / HTTP/1.1\r\n\r\n",
      "GET relative HTTP/1.1\r\n\r\n",
      "GET /\x01 HTTP/1.1\r\n\r\n",
      " / HTTP/1.1\r\n\r\n",
  };
  for (const char* bytes : cases) {
    HttpParser parser;
    parser.feed(bytes);
    HttpRequest request;
    EXPECT_FALSE(parser.next(request)) << bytes;
    ASSERT_TRUE(parser.failed()) << bytes;
    EXPECT_EQ(parser.error_status(), 400) << bytes;
  }
}

TEST(HttpParser, BadChunkFramingFails) {
  const char* cases[] = {
      // Not hex.
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n\r\n",
      // Chunk data missing its CRLF.
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "3\r\nabcX\r\n0\r\n\r\n",
      // Negative-looking size.
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n-1\r\n\r\n",
  };
  for (const char* bytes : cases) {
    HttpParser parser;
    parser.feed(bytes);
    HttpRequest request;
    EXPECT_FALSE(parser.next(request)) << bytes;
    EXPECT_TRUE(parser.failed()) << bytes;
  }
}

TEST(HttpParser, FeedAfterFailureStaysPoisoned) {
  HttpParser parser;
  parser.feed("BAD\r\n\r\n");
  HttpRequest request;
  EXPECT_FALSE(parser.next(request));
  ASSERT_TRUE(parser.failed());
  const std::string error = parser.error();
  parser.feed("GET / HTTP/1.1\r\n\r\n");
  EXPECT_FALSE(parser.next(request));
  EXPECT_TRUE(parser.failed());
  EXPECT_EQ(parser.error(), error);
}

TEST(HttpParserFuzz, GarbageBytesNeverCrash) {
  std::mt19937_64 rng(20240807);
  for (int round = 0; round < 300; ++round) {
    HttpParser parser;
    std::string bytes(1 + rng() % 512, '\0');
    for (char& c : bytes) {
      c = static_cast<char>(rng() & 0xff);
    }
    // Torn into random slices; the parser either fails with a mappable
    // status or keeps waiting for more bytes — never crashes, never
    // yields a request from garbage-only streams (a statistically
    // well-formed head is effectively impossible here).
    std::size_t offset = 0;
    while (offset < bytes.size()) {
      const std::size_t slice = 1 + rng() % 64;
      parser.feed(std::string_view(bytes).substr(offset, slice));
      offset += slice;
      HttpRequest request;
      while (parser.next(request)) {
      }
    }
    if (parser.failed()) {
      const int status = parser.error_status();
      EXPECT_TRUE(status == 400 || status == 413 || status == 431 ||
                  status == 501 || status == 505)
          << "round=" << round << " status=" << status;
      EXPECT_FALSE(parser.error().empty());
    }
  }
}

TEST(HttpParserFuzz, ValidStreamSurvivesRandomTearingAndGarbageTail) {
  std::mt19937_64 rng(0xFACADE);
  const std::string valid =
      "POST /v1/sample HTTP/1.1\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: 27\r\n\r\n"
      R"({"circuit":"M 0","shots":1})";
  for (int round = 0; round < 200; ++round) {
    // Valid request, then garbage: the request must parse, the garbage
    // must poison (or stay incomplete), and nothing crashes.
    std::string stream = valid;
    std::string garbage(rng() % 128, '\0');
    for (char& c : garbage) {
      c = static_cast<char>(rng() & 0xff);
    }
    stream += garbage;
    HttpParser parser;
    std::vector<HttpRequest> requests;
    std::size_t offset = 0;
    while (offset < stream.size()) {
      const std::size_t slice = 1 + rng() % 32;
      parser.feed(std::string_view(stream).substr(offset, slice));
      offset += slice;
      HttpRequest request;
      while (parser.next(request)) {
        requests.push_back(std::move(request));
      }
    }
    ASSERT_GE(requests.size(), 1u) << "round=" << round;
    EXPECT_EQ(requests[0].target, "/v1/sample");
    EXPECT_EQ(requests[0].body.size(), 27u);
  }
}

// --- JSON codec hardening (the other half of the gateway's input
// surface) --------------------------------------------------------------

TEST(JsonParser, ParsesTheGatewayRequestShape) {
  const JsonValue value = parse_json(
      R"({"circuit":"H 0\nM 0\n","shots":100,"seed":7,)"
      R"("rows":[0,2,5],"priority":"high","nested":{"a":true,"b":null}})");
  const JsonValue* circuit = value.find("circuit");
  ASSERT_NE(circuit, nullptr);
  EXPECT_EQ(circuit->as_string(), "H 0\nM 0\n");
  EXPECT_EQ(value.find("shots")->as_u64(), 100u);
  EXPECT_EQ(value.find("rows")->as_array().size(), 3u);
  EXPECT_TRUE(value.find("nested")->find("a")->as_bool());
}

TEST(JsonParser, RejectsMalformedDocuments) {
  const char* cases[] = {
      "",       "{",         "}",        "[1,]",      "{\"a\":}",
      "{'a':1}", "01",        "1.2.3",    "\"\\x\"",  "\"unterminated",
      "tru",     "{\"a\" 1}", "[1 2]",    "nan",      "+1",
      "{\"a\":1}extra",
  };
  for (const char* bytes : cases) {
    EXPECT_THROW(parse_json(bytes), std::invalid_argument) << bytes;
  }
}

TEST(JsonParser, DepthCapStopsRecursion) {
  std::string deep;
  for (int i = 0; i < 2000; ++i) {
    deep += '[';
  }
  EXPECT_THROW(parse_json(deep), std::invalid_argument);
}

TEST(JsonParser, U64PreservesExactIntegers) {
  EXPECT_EQ(parse_json("18446744073709551615").as_u64(),
            18446744073709551615ull);
  EXPECT_THROW(parse_json("-1").as_u64(), std::invalid_argument);
  EXPECT_THROW(parse_json("1.5").as_u64(), std::invalid_argument);
  EXPECT_THROW(parse_json("18446744073709551616").as_u64(),
               std::invalid_argument);
}

TEST(JsonParser, SurrogatePairsAndEscapes) {
  EXPECT_EQ(parse_json(R"("\ud83d\ude00")").as_string(), "\xf0\x9f\x98\x80");
  EXPECT_EQ(parse_json(R"("\u0041\n\t\"\\")").as_string(), "A\n\t\"\\");
  EXPECT_THROW(parse_json(R"("\ud83d")"), std::invalid_argument);
}

TEST(JsonParserFuzz, GarbageNeverCrashes) {
  std::mt19937_64 rng(424242);
  const char alphabet[] = "{}[]\",:0123456789.eE+-truefalsn\\u \t\n\x01\xff";
  for (int round = 0; round < 2000; ++round) {
    std::string bytes(rng() % 96, '\0');
    for (char& c : bytes) {
      c = alphabet[rng() % (sizeof alphabet - 1)];
    }
    try {
      (void)parse_json(bytes);
    } catch (const std::invalid_argument&) {
      // The only permitted failure mode.
    }
  }
}

}  // namespace
}  // namespace symphase
