// Subprocess tests for the symphase CLI binary. The binary path is
// injected by CMake (SYMPHASE_CLI_PATH).

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

namespace symphase {
namespace {

struct CommandResult {
  int exit_code = -1;
  std::string output;
};

CommandResult run_cli(const std::string& args) {
  const std::string command =
      std::string(SYMPHASE_CLI_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  CommandResult result;
  std::array<char, 4096> buffer;
  std::size_t n = 0;
  while ((n = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    result.output.append(buffer.data(), n);
  }
  const int status = pclose(pipe);
  result.exit_code = WEXITSTATUS(status);
  return result;
}

std::string write_temp_circuit(const std::string& text) {
  const std::string path =
      ::testing::TempDir() + "/cli_test_circuit.stim";
  FILE* f = fopen(path.c_str(), "w");
  EXPECT_NE(f, nullptr);
  fwrite(text.data(), 1, text.size(), f);
  fclose(f);
  return path;
}

TEST(Cli, UsageOnNoArguments) {
  const CommandResult r = run_cli("");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(Cli, UnknownCommand) {
  const CommandResult r = run_cli("frobnicate x");
  EXPECT_EQ(r.exit_code, 2);
}

TEST(Cli, UnknownOptionRejected) {
  const std::string path = write_temp_circuit("M 0\n");
  const CommandResult r = run_cli("sample " + path + " --bogus 1");
  EXPECT_EQ(r.exit_code, 2);
}

TEST(Cli, SampleDeterministicCircuit) {
  const std::string path = write_temp_circuit("X 0\nM 0 1\n");
  const CommandResult r = run_cli("sample " + path + " --shots 3");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output, "10\n10\n10\n");
}

TEST(Cli, SampleHexFormat) {
  const std::string path = write_temp_circuit("X 0\nM 0 1 2 3 4\n");
  const CommandResult r =
      run_cli("sample " + path + " --shots 2 --format hex");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output, "10\n10\n");  // bits 10000 -> nibbles 1, 0
}

TEST(Cli, SampleSeedReproducible) {
  const std::string path = write_temp_circuit("H 0\nM 0\n");
  const CommandResult a = run_cli("sample " + path + " --shots 20 --seed 5");
  const CommandResult b = run_cli("sample " + path + " --shots 20 --seed 5");
  const CommandResult c = run_cli("sample " + path + " --shots 20 --seed 6");
  EXPECT_EQ(a.output, b.output);
  EXPECT_NE(a.output, c.output);
}

TEST(Cli, AnalyzePrintsExpressions) {
  const std::string path =
      write_temp_circuit("X_ERROR(0.1) 0\nM 0\n");
  const CommandResult r = run_cli("analyze " + path);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("m0 = s1"), std::string::npos);
  EXPECT_NE(r.output.find("fault sites:   1"), std::string::npos);
}

TEST(Cli, DemOutput) {
  const std::string path = write_temp_circuit(
      "X_ERROR(0.25) 0\nM 0\nDETECTOR rec[-1]\nOBSERVABLE_INCLUDE(0) "
      "rec[-1]\n");
  const CommandResult r = run_cli("dem " + path);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output, "error(0.25) D0 L0\n");
}

TEST(Cli, DetectRequiresAnnotations) {
  const std::string path = write_temp_circuit("M 0\n");
  const CommandResult r = run_cli("detect " + path);
  EXPECT_EQ(r.exit_code, 1);
}

TEST(Cli, GenFamiliesParseBack) {
  for (const char* family :
       {"surface --distance 3 --rounds 2", "repetition --distance 3",
        "steane --rounds 2", "layered --qubits 10 --layers 3"}) {
    const CommandResult r = run_cli(std::string("gen ") + family);
    ASSERT_EQ(r.exit_code, 0) << family;
    ASSERT_FALSE(r.output.empty()) << family;
  }
}

TEST(Cli, GenPipesIntoDetect) {
  const std::string path =
      ::testing::TempDir() + "/cli_surface.stim";
  const CommandResult gen = run_cli(
      "gen surface --distance 3 --rounds 2 --p-data 0.01 > " + path +
      " && " + std::string(SYMPHASE_CLI_PATH) + " detect " + path +
      " --shots 4 --format 01");
  EXPECT_EQ(gen.exit_code, 0);
  // 4 lines of 24 detector bits + space + 1 observable bit.
  int lines = 0;
  for (const char c : gen.output) {
    lines += c == '\n';
  }
  EXPECT_EQ(lines, 4);
}

TEST(Cli, BadNumericOptionIsUsageError) {
  // Malformed numbers must exit with the usage code (2), not abort with
  // an uncaught std::invalid_argument or be misreported as a runtime
  // error (1).
  const std::string path = write_temp_circuit("M 0\n");
  for (const char* args :
       {" --shots abc", " --shots 12x", " --seed -", " --threads 9e9",
        " --shots -1", " --seed -7", " --shots +5",
        " --shots 99999999999999999999999"}) {
    const CommandResult r = run_cli("sample " + path + args);
    EXPECT_EQ(r.exit_code, 2) << args;
    EXPECT_NE(r.output.find("usage:"), std::string::npos) << args;
  }
  const CommandResult gen = run_cli("gen surface --p-data nope");
  EXPECT_EQ(gen.exit_code, 2);
}

TEST(Cli, ThreadsFlagKeepsOutputIdentical) {
  const std::string path = write_temp_circuit(
      "H 0\nCNOT 0 1\nX_ERROR(0.1) 0 1\nM 0 1\n");
  const CommandResult one =
      run_cli("sample " + path + " --shots 9000 --seed 3 --threads 1");
  const CommandResult four =
      run_cli("sample " + path + " --shots 9000 --seed 3 --threads 4");
  EXPECT_EQ(one.exit_code, 0);
  EXPECT_EQ(four.exit_code, 0);
  EXPECT_EQ(one.output, four.output);
}

TEST(Cli, BackendFlagSelectsFrameSimulator) {
  const std::string path = write_temp_circuit("X 0\nM 0 1\n");
  const CommandResult r =
      run_cli("sample " + path + " --shots 3 --backend frames");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output, "10\n10\n10\n");  // deterministic circuit
  const CommandResult bad = run_cli("sample " + path + " --backend quantum");
  EXPECT_EQ(bad.exit_code, 2);
}

TEST(Cli, DetectThreadsDeterministic) {
  const std::string gen_cmd = "gen surface --distance 3 --rounds 2 --p-data "
                              "0.01 --p-meas 0.01";
  const std::string path = ::testing::TempDir() + "/cli_surface_threads.stim";
  const CommandResult gen = run_cli(gen_cmd + " > " + path);
  ASSERT_EQ(gen.exit_code, 0);
  const CommandResult one = run_cli("detect " + path +
                                    " --shots 9000 --seed 5 --threads 1");
  const CommandResult four = run_cli("detect " + path +
                                     " --shots 9000 --seed 5 --threads 4");
  EXPECT_EQ(one.exit_code, 0);
  EXPECT_EQ(one.output, four.output);
}

TEST(Cli, ParseErrorReported) {
  const std::string path = write_temp_circuit("NOT_A_GATE 0\n");
  const CommandResult r = run_cli("sample " + path);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("parse error"), std::string::npos);
}

}  // namespace
}  // namespace symphase
