#include "circuit/gate.hpp"

#include <gtest/gtest.h>

namespace symphase {
namespace {

TEST(GateInfo, TableIsSelfConsistent) {
  for (const GateType t :
       {GateType::I, GateType::X, GateType::Y, GateType::Z, GateType::H,
        GateType::S, GateType::S_DAG, GateType::SQRT_X, GateType::SQRT_X_DAG,
        GateType::H_YZ, GateType::CNOT, GateType::CZ, GateType::SWAP,
        GateType::M, GateType::MR, GateType::R, GateType::X_ERROR,
        GateType::Y_ERROR, GateType::Z_ERROR, GateType::DEPOLARIZE1,
        GateType::DEPOLARIZE2, GateType::TICK}) {
    const GateInfo& info = gate_info(t);
    EXPECT_EQ(info.type, t);
    EXPECT_FALSE(info.name.empty());
    // Name lookup round-trips.
    const auto back = gate_type_from_name(info.name);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, t);
  }
}

TEST(GateInfo, Kinds) {
  EXPECT_EQ(gate_info(GateType::H).kind, GateKind::kUnitary1);
  EXPECT_EQ(gate_info(GateType::CNOT).kind, GateKind::kUnitary2);
  EXPECT_EQ(gate_info(GateType::M).kind, GateKind::kMeasure);
  EXPECT_EQ(gate_info(GateType::R).kind, GateKind::kReset);
  EXPECT_EQ(gate_info(GateType::X_ERROR).kind, GateKind::kNoise1);
  EXPECT_EQ(gate_info(GateType::DEPOLARIZE2).kind, GateKind::kNoise2);
  EXPECT_EQ(gate_info(GateType::TICK).kind, GateKind::kAnnotation);
}

TEST(GateInfo, ProbabilityFlag) {
  EXPECT_TRUE(gate_info(GateType::X_ERROR).takes_probability);
  EXPECT_TRUE(gate_info(GateType::DEPOLARIZE1).takes_probability);
  EXPECT_FALSE(gate_info(GateType::H).takes_probability);
  EXPECT_FALSE(gate_info(GateType::M).takes_probability);
}

TEST(GateInfo, Aliases) {
  EXPECT_EQ(gate_type_from_name("CX"), GateType::CNOT);
  EXPECT_EQ(gate_type_from_name("MZ"), GateType::M);
  EXPECT_EQ(gate_type_from_name("SQRT_Z"), GateType::S);
  EXPECT_EQ(gate_type_from_name("SQRT_Z_DAG"), GateType::S_DAG);
}

TEST(GateInfo, UnknownNameIsEmpty) {
  EXPECT_FALSE(gate_type_from_name("T").has_value());
  EXPECT_FALSE(gate_type_from_name("cnot").has_value());  // case sensitive
  EXPECT_FALSE(gate_type_from_name("").has_value());
}

TEST(GateInfo, ArityHelpers) {
  EXPECT_EQ(gate_arity(GateType::H), 1u);
  EXPECT_EQ(gate_arity(GateType::CNOT), 2u);
  EXPECT_EQ(gate_arity(GateType::DEPOLARIZE2), 2u);
  EXPECT_EQ(gate_arity(GateType::DEPOLARIZE1), 1u);
  EXPECT_TRUE(is_unitary(GateType::SWAP));
  EXPECT_FALSE(is_unitary(GateType::M));
  EXPECT_TRUE(is_noise(GateType::Y_ERROR));
  EXPECT_FALSE(is_noise(GateType::Y));
  EXPECT_TRUE(is_two_qubit(GateType::CZ));
  EXPECT_FALSE(is_two_qubit(GateType::S));
}

}  // namespace
}  // namespace symphase
