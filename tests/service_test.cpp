// In-process tests for the sampling service (src/service/): canonical
// digests, session-cache hit/miss/eviction accounting, same-digest
// batching (the compile-once contract), concurrent mixed-digest load,
// and the chunked response framing — including the ISSUE acceptance
// shape: three interleaved requests, two sharing a digest, one compile.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "api/session.hpp"
#include "circuit/parser.hpp"
#include "circuit/surface_code.hpp"
#include "sampler/sample_writer.hpp"
#include "service/digest.hpp"
#include "service/request.hpp"
#include "service/service.hpp"
#include "service/wire.hpp"

namespace symphase {
namespace {

constexpr const char* kCircuitA = "H 0\nCNOT 0 1\nX_ERROR(0.1) 0 1\nM 0 1\n";
constexpr const char* kCircuitB = "X 0\nM 0 1 2\n";

/// kCircuitA reformatted: comments, blank lines, indentation, spacing.
constexpr const char* kCircuitAReformatted =
    "# bell pair with noise\n"
    "\n"
    "  H    0\n"
    "\tCNOT 0   1\n"
    "X_ERROR(0.1)  0  1   # noise\n"
    "\n"
    "M 0 1\n";

/// Collects a request's frames; thread-safe so several requests can
/// share one collector (keyed by request_id).
class FrameCollector {
 public:
  FrameFn fn() {
    return [this](const FrameHeader& header, std::string_view payload) {
      const std::lock_guard<std::mutex> lock(mutex_);
      frames_.push_back(Frame{header, std::string(payload)});
    };
  }

  std::vector<Frame> frames() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return frames_;
  }

  /// Reassembles one request's message from the collected frames,
  /// verifying contiguous chunk indices along the way.
  MessageAssembler::Message message_for(std::uint64_t request_id) const {
    MessageAssembler assembler;
    std::optional<MessageAssembler::Message> result;
    for (const Frame& frame : frames()) {
      if (frame.header.request_id != request_id) {
        continue;
      }
      EXPECT_FALSE(result.has_value()) << "frames after last";
      if (auto message = assembler.accept(frame)) {
        result = std::move(message);
      }
      EXPECT_FALSE(assembler.failed()) << assembler.error();
    }
    EXPECT_TRUE(result.has_value()) << "request " << request_id
                                    << " never completed";
    return result.value_or(MessageAssembler::Message{});
  }

 private:
  mutable std::mutex mutex_;
  std::vector<Frame> frames_;
};

std::string direct_output(const std::string& circuit_text,
                          const SampleTask& task, SampleFormat format) {
  const SimulatorSession session(parse_circuit(circuit_text));
  std::ostringstream oss;
  WriterSink sink(oss, format);
  session.run(task, sink);
  return oss.str();
}

TEST(CircuitDigest, InsensitiveToFormattingSensitiveToSemantics) {
  const std::string a = circuit_text_digest(kCircuitA);
  EXPECT_TRUE(is_digest_string(a));
  EXPECT_EQ(a, circuit_text_digest(kCircuitAReformatted));
  // Any semantic change moves the digest.
  EXPECT_NE(a, circuit_text_digest(kCircuitB));
  EXPECT_NE(a, circuit_text_digest("H 0\nCNOT 0 1\nX_ERROR(0.2) 0 1\nM 0 1\n"));
  EXPECT_NE(a, circuit_text_digest("H 0\nCNOT 0 1\nX_ERROR(0.1) 0 1\nM 1 0\n"));
  EXPECT_THROW(circuit_text_digest("NOT_A_GATE 0\n"), std::invalid_argument);
}

TEST(RequestCodec, RoundTripsEveryField) {
  SampleRequest request = SampleRequest::detect("", 12345);
  request.digest = std::string(32, 'a');
  request.task.seed = 99;
  request.task.num_threads = 3;
  request.task.backend = SampleBackend::kFrameSimulator;
  request.task.bit_selection = {1, 4, 9};
  request.format = SampleFormat::kB8;

  const SampleRequest parsed =
      parse_request_payload(encode_request_payload(request));
  EXPECT_EQ(parsed.verb, RequestVerb::kDetect);
  EXPECT_EQ(parsed.digest, request.digest);
  EXPECT_EQ(parsed.task.shots, 12345u);
  EXPECT_EQ(parsed.task.seed, 99u);
  EXPECT_EQ(parsed.task.num_threads, 3u);
  EXPECT_EQ(parsed.task.backend, SampleBackend::kFrameSimulator);
  EXPECT_EQ(parsed.task.bit_selection, request.task.bit_selection);
  EXPECT_EQ(parsed.format, SampleFormat::kB8);

  SampleRequest inline_request = SampleRequest::sample(kCircuitA, 7);
  const SampleRequest parsed_inline =
      parse_request_payload(encode_request_payload(inline_request));
  EXPECT_EQ(parsed_inline.verb, RequestVerb::kSample);
  EXPECT_EQ(circuit_text_digest(parsed_inline.circuit_text),
            circuit_text_digest(kCircuitA));
  EXPECT_EQ(parsed_inline.task.shots, 7u);
}

TEST(RequestCodec, RejectsMalformedDirectives) {
  for (const char* bad : {
           "frobnicate shots=1\nM 0\n",        // unknown verb
           "sample shots=abc\nM 0\n",          // bad number
           "sample bogus=1\nM 0\n",            // unknown option
           "sample shots\nM 0\n",              // missing =value
           "sample rows=3,1\nM 0\n",           // unsorted rows
           "sample rows=2,2\nM 0\n",           // duplicate rows
           "sample digest=xyz\nM 0\n",         // malformed digest
           "sample shots=1\n",                 // no circuit, no digest
           "sample format=dets shots=1\nM 0\n",  // dets is detect-only
           "register\n",                       // register without circuit
           "stats\nM 0\n",                     // stats with trailing text
       }) {
    EXPECT_THROW(parse_request_payload(bad), std::invalid_argument) << bad;
  }
  // Both circuit text and digest= present.
  std::string both = "sample digest=";
  both += std::string(32, '0');
  both += "\nM 0\n";
  EXPECT_THROW(parse_request_payload(both), std::invalid_argument);
}

TEST(SamplingService, SameDigestRequestsCompileOnceAcrossTextVariants) {
  SamplingService service({.num_workers = 2});
  FrameCollector collector;
  // Four requests for the same circuit: twice as differently formatted
  // inline text, twice through the registered digest handle.
  const std::string digest = service.register_circuit(kCircuitA);

  SampleRequest inline_a = SampleRequest::sample(kCircuitA, 5000);
  inline_a.task.seed = 3;
  SampleRequest inline_reformatted =
      SampleRequest::sample(kCircuitAReformatted, 5000);
  inline_reformatted.task.seed = 3;
  SampleRequest by_digest = SampleRequest::sample("", 5000);
  by_digest.digest = digest;
  by_digest.task.seed = 3;

  service.submit(1, inline_a, collector.fn());
  service.submit(2, inline_reformatted, collector.fn());
  service.submit(3, by_digest, collector.fn());
  service.submit(4, by_digest, collector.fn());
  service.drain();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.misses, 1u) << stats.to_line();
  EXPECT_EQ(stats.hits, 3u) << stats.to_line();
  EXPECT_EQ(stats.compiles, 1u) << stats.to_line();
  EXPECT_EQ(stats.evictions, 0u) << stats.to_line();
  EXPECT_EQ(stats.completed, 4u) << stats.to_line();
  EXPECT_EQ(stats.failed, 0u) << stats.to_line();

  // All four responses are identical and match the direct session path.
  const std::string expected = direct_output(
      kCircuitA, SampleTask::measurements(5000).with_seed(3), SampleFormat::k01);
  for (const std::uint64_t id : {1, 2, 3, 4}) {
    const auto message = collector.message_for(id);
    EXPECT_FALSE(message.error) << message.error_text;
    EXPECT_EQ(message.payload, expected) << "request " << id;
  }
}

TEST(SamplingService, AcceptanceThreeInterleavedRequestsOneCompile) {
  // The ISSUE's acceptance shape: >= 3 in-flight requests, two sharing
  // one digest, served concurrently; the shared circuit compiles once
  // and every reassembled payload is bit-identical to the direct path.
  SamplingService service(
      {.num_workers = 3, .queue_capacity = 8, .session_cache_capacity = 4});
  FrameCollector collector;

  SampleRequest shared_1 = SampleRequest::sample(kCircuitA, 30000);
  shared_1.task.seed = 11;
  SampleRequest shared_2 = SampleRequest::sample(kCircuitAReformatted, 20000);
  shared_2.task.seed = 12;
  shared_2.format = SampleFormat::kB8;
  SampleRequest other = SampleRequest::sample(kCircuitB, 25000);
  other.task.seed = 13;
  other.format = SampleFormat::kHex;

  service.submit(101, shared_1, collector.fn());
  service.submit(102, shared_2, collector.fn());
  service.submit(103, other, collector.fn());
  service.drain();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.misses, 2u) << stats.to_line();   // A once, B once
  EXPECT_EQ(stats.hits, 1u) << stats.to_line();     // second A request
  EXPECT_EQ(stats.compiles, 2u) << stats.to_line();  // one per distinct circuit
  EXPECT_EQ(stats.completed, 3u);

  EXPECT_EQ(collector.message_for(101).payload,
            direct_output(kCircuitA,
                          SampleTask::measurements(30000).with_seed(11),
                          SampleFormat::k01));
  EXPECT_EQ(collector.message_for(102).payload,
            direct_output(kCircuitA,
                          SampleTask::measurements(20000).with_seed(12),
                          SampleFormat::kB8));
  EXPECT_EQ(collector.message_for(103).payload,
            direct_output(kCircuitB,
                          SampleTask::measurements(25000).with_seed(13),
                          SampleFormat::kHex));
}

TEST(SamplingService, LruEvictionTriggersRecompile) {
  SamplingService service({.num_workers = 1, .session_cache_capacity = 2});
  FrameCollector collector;
  const std::vector<std::string> circuits = {kCircuitA, kCircuitB,
                                             "H 0\nM 0\n"};
  // Fill the 2-slot cache with A and B, touch C (evicts A, the LRU),
  // then re-request A: it must recompile.
  std::uint64_t id = 1;
  for (const std::string& circuit : {circuits[0], circuits[1], circuits[2],
                                     circuits[0]}) {
    SampleRequest request = SampleRequest::sample(circuit, 100);
    service.submit(id++, request, collector.fn());
    service.drain();  // serialize so the LRU order is deterministic
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.misses, 4u) << stats.to_line();  // A, B, C, A again
  EXPECT_EQ(stats.hits, 0u) << stats.to_line();
  EXPECT_EQ(stats.evictions, 2u) << stats.to_line();  // A then B dropped
  EXPECT_EQ(stats.compiles, 4u) << stats.to_line();   // A compiled twice

  // A cache hit refreshes recency: touch B (in cache with A), then C —
  // A must survive because B..no: touch A, add C, A stays, B evicted.
  SamplingService service2({.num_workers = 1, .session_cache_capacity = 2});
  FrameCollector collector2;
  for (const std::string& circuit : {circuits[0], circuits[1], circuits[0],
                                     circuits[2], circuits[0]}) {
    SampleRequest request = SampleRequest::sample(circuit, 100);
    service2.submit(id++, request, collector2.fn());
    service2.drain();
  }
  const ServiceStats stats2 = service2.stats();
  // A, B miss; A hit (refreshes A); C miss evicts B; A hit again.
  EXPECT_EQ(stats2.misses, 3u) << stats2.to_line();
  EXPECT_EQ(stats2.hits, 2u) << stats2.to_line();
  EXPECT_EQ(stats2.compiles, 3u) << stats2.to_line();
}

TEST(SamplingService, ConcurrentMixedDigestLoadReturnsCorrectPerRequestBits) {
  SamplingService service({.num_workers = 4, .queue_capacity = 4,
                           .session_cache_capacity = 3});
  FrameCollector collector;
  const std::vector<std::string> circuits = {kCircuitA, kCircuitB,
                                             "H 0\nH 1\nM 0 1\n"};
  struct Expected {
    std::uint64_t id;
    std::string payload;
  };
  std::vector<Expected> expected;
  std::uint64_t id = 1000;
  for (int wave = 0; wave < 3; ++wave) {
    for (std::size_t c = 0; c < circuits.size(); ++c) {
      SampleRequest request = SampleRequest::sample(circuits[c], 4000 + c);
      request.task.seed = id;
      request.task.backend = (id % 2) == 0 ? SampleBackend::kSymPhase
                                           : SampleBackend::kFrameSimulator;
      expected.push_back(
          {id, direct_output(circuits[c], request.task, request.format)});
      service.submit(id, request, collector.fn());
      ++id;
    }
  }
  service.drain();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, 9u) << stats.to_line();
  EXPECT_EQ(stats.failed, 0u) << stats.to_line();
  EXPECT_EQ(stats.misses, 3u) << stats.to_line();  // one per distinct digest
  EXPECT_EQ(stats.hits, 6u) << stats.to_line();
  for (const Expected& e : expected) {
    const auto message = collector.message_for(e.id);
    EXPECT_FALSE(message.error) << message.error_text;
    EXPECT_EQ(message.payload, e.payload) << "request " << e.id;
  }
}

TEST(SamplingService, LargeResponsesSplitAcrossFramesAtTheCap) {
  SamplingService service({.num_workers = 1, .max_frame_payload = 64});
  FrameCollector collector;
  SampleRequest request = SampleRequest::sample(kCircuitB, 1000);
  service.submit(5, request, collector.fn());
  service.drain();
  const std::vector<Frame> frames = collector.frames();
  ASSERT_GT(frames.size(), 2u);
  for (std::size_t i = 0; i + 1 < frames.size(); ++i) {
    EXPECT_LE(frames[i].payload.size(), 64u);
    EXPECT_EQ(frames[i].header.chunk_index, i);
    EXPECT_EQ(frames[i].header.flags, 0);
  }
  EXPECT_EQ(frames.back().header.flags, kFrameLast);
  EXPECT_EQ(collector.message_for(5).payload,
            direct_output(kCircuitB, SampleTask::measurements(1000),
                          SampleFormat::k01));
}

TEST(SamplingService, FailuresArriveAsErrorStatusFrames) {
  SamplingService service({.num_workers = 1});
  FrameCollector collector;

  // Unknown digest handle.
  SampleRequest unknown = SampleRequest::sample("", 10);
  unknown.digest = std::string(32, '0');
  service.submit(1, unknown, collector.fn());
  // Circuit that fails to parse.
  service.submit(2, SampleRequest::sample("NOT_A_GATE 0\n", 10),
                 collector.fn());
  // Out-of-range bit selection (rejected by the streaming engine).
  SampleRequest bad_rows = SampleRequest::sample(kCircuitB, 10);
  bad_rows.task.bit_selection = {999};
  service.submit(3, bad_rows, collector.fn());
  service.drain();

  const auto unknown_message = collector.message_for(1);
  EXPECT_TRUE(unknown_message.error);
  EXPECT_NE(unknown_message.error_text.find("unknown circuit digest"),
            std::string::npos);
  EXPECT_TRUE(collector.message_for(2).error);
  EXPECT_TRUE(collector.message_for(3).error);
  EXPECT_EQ(service.stats().failed, 3u);
  EXPECT_EQ(service.stats().completed, 0u);

  // Submitting non-sampling verbs is a caller error, reported inline.
  SampleRequest stats_request;
  stats_request.verb = RequestVerb::kStats;
  EXPECT_THROW(service.submit(4, stats_request, collector.fn()),
               std::invalid_argument);
}

TEST(SamplingService, FrameBackendBuildsNoCompiledSampler) {
  SamplingService service({.num_workers = 1});
  FrameCollector collector;
  SampleRequest request = SampleRequest::sample(kCircuitA, 100);
  request.task.backend = SampleBackend::kFrameSimulator;
  service.submit(1, request, collector.fn());
  service.drain();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.compiles, 0u) << stats.to_line();
  EXPECT_EQ(stats.frame_builds, 1u) << stats.to_line();
}

TEST(SamplingService, ClearSessionsRetiresCompilesIntoStats) {
  SamplingService service({.num_workers = 1});
  FrameCollector collector;
  service.submit(1, SampleRequest::sample(kCircuitA, 50), collector.fn());
  service.drain();
  EXPECT_EQ(service.stats().compiles, 1u);
  service.clear_sessions();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.compiles, 1u) << stats.to_line();   // still counted
  EXPECT_EQ(stats.evictions, 1u) << stats.to_line();
  // Re-request: registry survived (inline text re-registers anyway), a
  // fresh session compiles again.
  service.submit(2, SampleRequest::sample(kCircuitA, 50), collector.fn());
  service.drain();
  EXPECT_EQ(service.stats().compiles, 2u);
}

TEST(SimulatorSession, ResetDropsArtifactsAndRebuildsDeterministically) {
  SimulatorSession session(parse_circuit(kCircuitA));
  EXPECT_FALSE(session.artifacts().compiled);
  const BitMatrix first =
      session.run_to_matrix(SampleTask::measurements(500).with_seed(9));
  EXPECT_TRUE(session.artifacts().compiled);
  session.reset();
  const SessionArtifacts after = session.artifacts();
  EXPECT_FALSE(after.compiled);
  EXPECT_FALSE(after.frames);
  EXPECT_FALSE(after.layout);
  // Back-to-back task on the same session after reset: identical bits.
  const BitMatrix second =
      session.run_to_matrix(SampleTask::measurements(500).with_seed(9));
  EXPECT_EQ(first, second);
}

TEST(SamplingService, RegistryIsLruBounded) {
  // Distinct circuits must not grow server memory without bound: the
  // registry has its own LRU, and an evicted digest handle is unknown
  // again (inline requests still work — they re-register).
  SamplingService service({.num_workers = 1, .registry_capacity = 2});
  const std::string digest_a = service.register_circuit(kCircuitA);
  const std::string digest_b = service.register_circuit(kCircuitB);
  const std::string digest_c = service.register_circuit("H 0\nM 0\n");
  // A was least recently used and fell out; B and C survive.
  FrameCollector collector;
  SampleRequest by_digest = SampleRequest::sample("", 10);
  by_digest.digest = digest_a;
  service.submit(1, by_digest, collector.fn());
  by_digest.digest = digest_c;
  service.submit(2, by_digest, collector.fn());
  service.drain();
  const auto evicted = collector.message_for(1);
  EXPECT_TRUE(evicted.error);
  EXPECT_NE(evicted.error_text.find("unknown circuit digest"),
            std::string::npos);
  EXPECT_FALSE(collector.message_for(2).error);
  // Re-registering the evicted circuit restores the handle.
  EXPECT_EQ(service.register_circuit(kCircuitA), digest_a);
  by_digest.digest = digest_a;
  service.submit(3, by_digest, collector.fn());
  service.drain();
  EXPECT_FALSE(collector.message_for(3).error);
}

TEST(SamplingService, RejectsFramePayloadCapBeyondU32) {
  // The wire header's length field is u32; a larger per-frame cap would
  // let the frame sink cut slices encode_frame() cannot represent.
  ServiceOptions options;
  options.max_frame_payload = 0x100000000ull;
  EXPECT_THROW(SamplingService{options}, std::invalid_argument);
}

TEST(SamplingService, BoundedQueueBackpressuresSubmit) {
  // One slow-ish request occupies the single worker while the queue
  // (capacity 1) holds one more; a third submit must block until the
  // worker frees a slot — observed via a timestamp ordering.
  SamplingService service({.num_workers = 1, .queue_capacity = 1});
  FrameCollector collector;
  std::atomic<int> completed{0};
  const FrameFn counting = [&](const FrameHeader& header,
                               std::string_view payload) {
    (void)payload;
    if ((header.flags & kFrameLast) != 0) {
      completed.fetch_add(1);
    }
  };
  SampleRequest slow = SampleRequest::sample(kCircuitA, 200000);
  service.submit(1, slow, counting);
  service.submit(2, slow, counting);
  // This submit can only be accepted once request 1 left the queue; the
  // real assertion is that it unblocks (no deadlock) and everything
  // still completes exactly once.
  service.submit(3, slow, counting);
  service.drain();
  EXPECT_EQ(completed.load(), 3);
  EXPECT_EQ(service.stats().completed, 3u);
  (void)collector;
}

}  // namespace
}  // namespace symphase
