#include "circuit/circuit.hpp"

#include <gtest/gtest.h>

namespace symphase {
namespace {

TEST(Circuit, EmptyCircuit) {
  Circuit c;
  EXPECT_EQ(c.num_qubits(), 0u);
  EXPECT_TRUE(c.instructions().empty());
  EXPECT_EQ(c.num_measurements(), 0u);
}

TEST(Circuit, AppendGrowsQubitCount) {
  Circuit c;
  c.append1(GateType::H, 4);
  EXPECT_EQ(c.num_qubits(), 5u);
  c.append2(GateType::CNOT, 9, 2);
  EXPECT_EQ(c.num_qubits(), 10u);
  c.append1(GateType::X, 0);
  EXPECT_EQ(c.num_qubits(), 10u);
}

TEST(Circuit, PairwiseTargetValidation) {
  Circuit c(4);
  EXPECT_THROW(c.append(GateType::CNOT, {0, 1, 2}), std::invalid_argument);
  EXPECT_THROW(c.append(GateType::CNOT, {1, 1}), std::invalid_argument);
  c.append(GateType::CNOT, {0, 1, 2, 3});
  EXPECT_EQ(c.instructions().back().targets.size(), 4u);
}

TEST(Circuit, ProbabilityValidation) {
  Circuit c(2);
  EXPECT_THROW(c.append(GateType::X_ERROR, {0}, 1.5), std::invalid_argument);
  EXPECT_THROW(c.append(GateType::X_ERROR, {0}, -0.1), std::invalid_argument);
  EXPECT_THROW(c.append(GateType::H, {0}, 0.5), std::invalid_argument);
  c.append(GateType::X_ERROR, {0}, 0.25);
  EXPECT_DOUBLE_EQ(c.instructions().back().probability, 0.25);
}

TEST(Circuit, EmptyTargetsRejectedExceptTick) {
  Circuit c(2);
  EXPECT_THROW(c.append(GateType::H, {}), std::invalid_argument);
  c.append(GateType::TICK, {});
  EXPECT_THROW(c.append(GateType::TICK, {0}), std::invalid_argument);
}

TEST(Circuit, StatsCountsEverything) {
  Circuit c(4);
  c.append(GateType::H, {0, 1, 2});        // 3 gates
  c.append(GateType::CNOT, {0, 1, 2, 3});  // 2 gates
  c.append(GateType::M, {0, 1});           // 2 measurements
  c.append(GateType::MR, {2});             // 1 measurement + 1 reset
  c.append(GateType::R, {3});              // 1 reset
  c.append(GateType::X_ERROR, {0, 1}, 0.1);       // 2 noise sites
  c.append(GateType::DEPOLARIZE1, {2}, 0.1);      // 1 noise site
  c.append(GateType::DEPOLARIZE2, {0, 1}, 0.1);   // 2 noise sites
  c.append(GateType::TICK, {});
  const CircuitStats s = c.stats();
  EXPECT_EQ(s.num_qubits, 4u);
  EXPECT_EQ(s.num_gates, 5u);
  EXPECT_EQ(s.num_measurements, 3u);
  EXPECT_EQ(s.num_resets, 2u);
  EXPECT_EQ(s.num_noise_sites, 5u);
  EXPECT_EQ(s.num_instructions, 9u);
  EXPECT_EQ(c.num_measurements(), 3u);
}

TEST(Circuit, AppendCircuitConcatenates) {
  Circuit a(2);
  a.append1(GateType::H, 0);
  Circuit b(3);
  b.append1(GateType::X, 2);
  a.append_circuit(b);
  EXPECT_EQ(a.num_qubits(), 3u);
  EXPECT_EQ(a.instructions().size(), 2u);
}

TEST(Circuit, AppendRepeated) {
  Circuit body(1);
  body.append1(GateType::H, 0);
  Circuit c(1);
  c.append_repeated(body, 5);
  EXPECT_EQ(c.instructions().size(), 5u);
  c.append_repeated(body, 0);
  EXPECT_EQ(c.instructions().size(), 5u);
}

TEST(Circuit, ToTextFormat) {
  Circuit c(3);
  c.append(GateType::H, {0, 2});
  c.append(GateType::X_ERROR, {1}, 0.125);
  c.append(GateType::M, {0});
  const std::string text = c.to_text();
  EXPECT_EQ(text, "H 0 2\nX_ERROR(0.125) 1\nM 0\n");
}

TEST(Circuit, EqualityIsStructural) {
  Circuit a(2);
  a.append1(GateType::H, 0);
  Circuit b(2);
  b.append1(GateType::H, 0);
  EXPECT_EQ(a, b);
  b.append1(GateType::X, 1);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace symphase
