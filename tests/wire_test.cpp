// Property/fuzz tests for the wire protocol (src/service/wire.hpp).
//
// Every random sequence below is driven by a fixed-seed std::mt19937_64,
// so a failure reproduces exactly. The hostile-input tests (truncation,
// oversized lengths, garbage bytes) assert the decoder degrades to a
// clean error state — no crash, no unbounded buffering — and CI runs
// this binary under ASan+UBSan so "no UB" is enforced, not assumed.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "service/errors.hpp"
#include "service/wire.hpp"

namespace symphase {
namespace {

std::string random_bytes(std::mt19937_64& rng, std::size_t size) {
  std::string bytes(size, '\0');
  std::uniform_int_distribution<int> byte(0, 255);
  for (char& c : bytes) {
    c = static_cast<char>(byte(rng));
  }
  return bytes;
}

/// Feeds `stream` to `decoder` in random-size slices and drains frames
/// after every slice (the way a socket/pipe reader would).
std::vector<Frame> decode_in_slices(std::mt19937_64& rng, FrameDecoder& decoder,
                                    const std::string& stream) {
  std::vector<Frame> frames;
  std::size_t offset = 0;
  std::uniform_int_distribution<std::size_t> slice_size(1, 97);
  while (offset < stream.size()) {
    const std::size_t n = std::min(slice_size(rng), stream.size() - offset);
    decoder.feed(std::string_view(stream).substr(offset, n));
    offset += n;
    Frame frame;
    while (decoder.next(frame)) {
      frames.push_back(frame);
    }
  }
  return frames;
}

TEST(WireFrame, HeaderLayoutIsLittleEndianAndSized) {
  FrameHeader header;
  header.request_id = 0x1122334455667788ULL;
  header.chunk_index = 0xa1b2c3d4;
  header.flags = kFrameLast;
  const std::string frame = encode_frame(header, "ab");
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + 2);
  const auto byte = [&](std::size_t i) {
    return static_cast<unsigned char>(frame[i]);
  };
  EXPECT_EQ(byte(0), 0x88);  // request_id LSB first
  EXPECT_EQ(byte(7), 0x11);
  EXPECT_EQ(byte(8), 0xd4);  // chunk_index
  EXPECT_EQ(byte(11), 0xa1);
  EXPECT_EQ(byte(12), 2);  // payload_bytes
  EXPECT_EQ(byte(15), 0);
  EXPECT_EQ(byte(16), kFrameLast);
  EXPECT_EQ(frame.substr(kFrameHeaderBytes), "ab");
}

TEST(WireFuzz, RandomFrameSequencesRoundTrip) {
  std::mt19937_64 rng(20240601);
  for (int round = 0; round < 50; ++round) {
    // A random interleaving of messages for a small id pool, each a
    // contiguous chunk run ending in a last (sometimes error) frame.
    std::uniform_int_distribution<int> count(1, 30);
    std::uniform_int_distribution<std::uint64_t> id(0, 4);
    std::uniform_int_distribution<std::size_t> payload_size(0, 512);
    std::uniform_int_distribution<int> coin(0, 9);

    std::vector<Frame> sent;
    std::unordered_map<std::uint64_t, std::uint32_t> next_chunk;
    std::unordered_map<std::uint64_t, std::string> expected_payload;
    std::vector<MessageAssembler::Message> expected_messages;
    const int frames = count(rng);
    for (int i = 0; i < frames; ++i) {
      Frame frame;
      frame.header.request_id = id(rng);
      frame.header.chunk_index = next_chunk[frame.header.request_id];
      frame.payload = random_bytes(rng, payload_size(rng));
      const bool last = coin(rng) < 3;
      const bool error = last && coin(rng) < 2;
      frame.header.flags = static_cast<std::uint8_t>(
          (last ? kFrameLast : 0) | (error ? kFrameError : 0));
      frame.header.payload_bytes =
          static_cast<std::uint32_t>(frame.payload.size());
      sent.push_back(frame);
      if (error) {
        expected_messages.push_back(
            {frame.header.request_id, "", true, frame.payload});
        next_chunk.erase(frame.header.request_id);
        expected_payload.erase(frame.header.request_id);
      } else {
        expected_payload[frame.header.request_id] += frame.payload;
        if (last) {
          expected_messages.push_back(
              {frame.header.request_id,
               expected_payload[frame.header.request_id], false, ""});
          next_chunk.erase(frame.header.request_id);
          expected_payload.erase(frame.header.request_id);
        } else {
          next_chunk[frame.header.request_id]++;
        }
      }
    }

    std::string stream;
    for (const Frame& frame : sent) {
      stream += encode_frame(frame.header, frame.payload);
    }

    FrameDecoder decoder;
    const std::vector<Frame> decoded = decode_in_slices(rng, decoder, stream);
    EXPECT_TRUE(decoder.finish()) << decoder.error();
    ASSERT_EQ(decoded.size(), sent.size());
    MessageAssembler assembler;
    std::vector<MessageAssembler::Message> messages;
    for (std::size_t i = 0; i < sent.size(); ++i) {
      EXPECT_EQ(decoded[i].header.request_id, sent[i].header.request_id);
      EXPECT_EQ(decoded[i].header.chunk_index, sent[i].header.chunk_index);
      EXPECT_EQ(decoded[i].header.flags, sent[i].header.flags);
      EXPECT_EQ(decoded[i].payload, sent[i].payload);
      if (auto message = assembler.accept(decoded[i])) {
        messages.push_back(std::move(*message));
      }
    }
    ASSERT_FALSE(assembler.failed()) << assembler.error();
    ASSERT_EQ(messages.size(), expected_messages.size());
    for (std::size_t i = 0; i < messages.size(); ++i) {
      EXPECT_EQ(messages[i].request_id, expected_messages[i].request_id);
      EXPECT_EQ(messages[i].payload, expected_messages[i].payload);
      EXPECT_EQ(messages[i].error, expected_messages[i].error);
      EXPECT_EQ(messages[i].error_text, expected_messages[i].error_text);
    }
  }
}

TEST(WireFuzz, TruncatedStreamsErrorCleanly) {
  std::mt19937_64 rng(77);
  FrameHeader header;
  header.request_id = 9;
  std::string stream;
  std::vector<std::size_t> boundaries = {0};
  for (std::uint32_t i = 0; i < 8; ++i) {
    header.chunk_index = i;
    header.flags = i == 7 ? kFrameLast : 0;
    stream += encode_frame(header, random_bytes(rng, 100 + i));
    boundaries.push_back(stream.size());
  }
  // Every strict prefix either ends exactly between frames (clean) or
  // inside one (truncation error) — never crashes, never accepts a
  // partial frame as data.
  for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
    FrameDecoder decoder;
    decoder.feed(std::string_view(stream).substr(0, cut));
    Frame frame;
    std::size_t whole = 0;
    while (decoder.next(frame)) {
      EXPECT_EQ(frame.payload.size(), 100 + frame.header.chunk_index);
      ++whole;
    }
    const bool at_boundary =
        std::find(boundaries.begin(), boundaries.end(), cut) !=
        boundaries.end();
    EXPECT_EQ(decoder.finish(), at_boundary) << "cut " << cut;
    EXPECT_EQ(decoder.failed(), !at_boundary) << "cut " << cut;
    if (!at_boundary) {
      EXPECT_NE(decoder.error().find("truncated"), std::string::npos);
    }
    // Whole frames before the cut decoded fine either way.
    std::size_t complete = 0;
    while (complete < 8 && boundaries[complete + 1] <= cut) {
      ++complete;
    }
    EXPECT_EQ(whole, complete) << "cut " << cut;
  }
}

TEST(WireFuzz, OversizedPayloadLengthRejectedBeforeBuffering) {
  FrameDecoder decoder(1024);
  FrameHeader header;
  header.request_id = 1;
  header.payload_bytes = 0xffffffff;  // ~4 GiB claim
  char head[kFrameHeaderBytes];
  encode_frame_header(header, head);
  decoder.feed(std::string_view(head, kFrameHeaderBytes));
  Frame frame;
  EXPECT_FALSE(decoder.next(frame));
  EXPECT_TRUE(decoder.failed());
  EXPECT_NE(decoder.error().find("payload_bytes"), std::string::npos);
  // Poisoned: further input is ignored, no buffering growth.
  decoder.feed(std::string(1 << 16, 'x'));
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
  EXPECT_FALSE(decoder.next(frame));
}

TEST(WireFuzz, UnknownFlagBitsRejected) {
  for (int flags = 8; flags < 256; flags <<= 1) {
    FrameDecoder decoder;
    FrameHeader header;
    header.flags = static_cast<std::uint8_t>(flags);
    decoder.feed(encode_frame(header, ""));
    Frame frame;
    EXPECT_FALSE(decoder.next(frame)) << flags;
    EXPECT_TRUE(decoder.failed()) << flags;
  }
}

TEST(WireFuzz, TimingFinalFrameCarriesSummaryNotData) {
  FrameDecoder decoder;
  FrameHeader header;
  header.request_id = 3;
  header.payload_bytes = 4;
  decoder.feed(encode_frame(header, "data"));
  header.chunk_index = 1;
  header.flags = kFrameLast | kFrameTiming;
  const std::string timing = "queue;dur=0.120, total;dur=4.500";
  header.payload_bytes = static_cast<std::uint32_t>(timing.size());
  decoder.feed(encode_frame(header, timing));
  MessageAssembler assembler;
  Frame frame;
  std::optional<MessageAssembler::Message> message;
  while (decoder.next(frame)) {
    if (auto done = assembler.accept(frame)) {
      message = std::move(done);
    }
  }
  EXPECT_TRUE(decoder.finish()) << decoder.error();
  ASSERT_TRUE(message.has_value());
  // The timing payload annotates the message; it is not data bytes.
  EXPECT_EQ(message->payload, "data");
  EXPECT_EQ(message->timing, timing);
  EXPECT_FALSE(message->error);
}

TEST(WireFuzz, TimingWithoutLastRejected) {
  FrameDecoder decoder;
  FrameHeader header;
  header.flags = kFrameTiming;
  decoder.feed(encode_frame(header, ""));
  Frame frame;
  EXPECT_FALSE(decoder.next(frame));
  EXPECT_TRUE(decoder.failed());
  EXPECT_NE(decoder.error().find("timing frame"), std::string::npos);
}

TEST(WireFuzz, TimingOnErrorFrameRejected) {
  FrameDecoder decoder;
  FrameHeader header;
  header.flags = kFrameLast | kFrameError | kFrameTiming;
  header.payload_bytes = 4;
  decoder.feed(encode_frame(header, "boom"));
  Frame frame;
  EXPECT_FALSE(decoder.next(frame));
  EXPECT_TRUE(decoder.failed());
  EXPECT_NE(decoder.error().find("timing frame"), std::string::npos);
}

TEST(WireFuzz, ErrorWithoutLastRejected) {
  FrameDecoder decoder;
  FrameHeader header;
  header.flags = kFrameError;
  decoder.feed(encode_frame(header, "boom"));
  Frame frame;
  EXPECT_FALSE(decoder.next(frame));
  EXPECT_TRUE(decoder.failed());
  EXPECT_NE(decoder.error().find("error frame without last"),
            std::string::npos);
}

TEST(WireFuzz, OutOfOrderChunkIndexRejected) {
  std::mt19937_64 rng(4242);
  for (int round = 0; round < 200; ++round) {
    MessageAssembler assembler;
    FrameHeader header;
    header.request_id = 5;
    Frame frame;
    frame.header = header;
    // Valid prefix of k in-order chunks...
    std::uniform_int_distribution<std::uint32_t> prefix(0, 5);
    const std::uint32_t k = prefix(rng);
    for (std::uint32_t i = 0; i < k; ++i) {
      frame.header.chunk_index = i;
      frame.payload = "d";
      EXPECT_FALSE(assembler.accept(frame).has_value());
      EXPECT_FALSE(assembler.failed());
    }
    // ...then a gap, repeat, or backwards jump.
    std::uniform_int_distribution<std::uint32_t> wrong(0, 1000);
    std::uint32_t bad = wrong(rng);
    if (bad == k) {
      bad = k + 1 + wrong(rng);
    }
    frame.header.chunk_index = bad;
    EXPECT_FALSE(assembler.accept(frame).has_value());
    EXPECT_TRUE(assembler.failed());
    EXPECT_NE(assembler.error().find("out-of-order"), std::string::npos);
    // Poisoned assembler rejects everything afterwards.
    frame.header.chunk_index = k;
    EXPECT_FALSE(assembler.accept(frame).has_value());
  }
}

TEST(WireFuzz, MessageSizeCapEnforced) {
  MessageAssembler assembler(/*max_message_bytes=*/100);
  Frame frame;
  frame.header.request_id = 3;
  frame.payload = std::string(60, 'x');
  frame.header.chunk_index = 0;
  EXPECT_FALSE(assembler.accept(frame).has_value());
  EXPECT_FALSE(assembler.failed());
  frame.header.chunk_index = 1;
  EXPECT_FALSE(assembler.accept(frame).has_value());
  EXPECT_TRUE(assembler.failed());
  EXPECT_NE(assembler.error().find("exceeds"), std::string::npos);
}

TEST(WireFuzz, RequestIdSprayHitsOpenMessageCap) {
  // Millions of distinct request_ids with flags=0 frames must not grow
  // per-request state without bound: the assembler fails cleanly at the
  // cap instead.
  MessageAssembler assembler(kDefaultMaxMessageBytes,
                             /*max_open_messages=*/64);
  Frame frame;
  frame.header.chunk_index = 0;
  for (std::uint64_t id = 0; id < 64; ++id) {
    frame.header.request_id = id;
    EXPECT_FALSE(assembler.accept(frame).has_value());
    EXPECT_FALSE(assembler.failed()) << id;
  }
  frame.header.request_id = 64;
  EXPECT_FALSE(assembler.accept(frame).has_value());
  EXPECT_TRUE(assembler.failed());
  EXPECT_NE(assembler.error().find("interleaved messages"),
            std::string::npos);

  // Completing messages frees their slots: at the cap, finish one and a
  // fresh id fits again.
  MessageAssembler recycler(kDefaultMaxMessageBytes, 2);
  frame.header.request_id = 1;
  EXPECT_FALSE(recycler.accept(frame).has_value());
  frame.header.request_id = 2;
  EXPECT_FALSE(recycler.accept(frame).has_value());
  frame.header.request_id = 1;
  frame.header.chunk_index = 1;
  frame.header.flags = kFrameLast;
  EXPECT_TRUE(recycler.accept(frame).has_value());
  frame.header.request_id = 3;
  frame.header.chunk_index = 0;
  frame.header.flags = 0;
  EXPECT_FALSE(recycler.accept(frame).has_value());
  EXPECT_FALSE(recycler.failed()) << recycler.error();
}

TEST(WireFuzz, GarbageBytesNeverCrash) {
  std::mt19937_64 rng(999);
  for (int round = 0; round < 100; ++round) {
    FrameDecoder decoder(4096);
    MessageAssembler assembler;
    std::uniform_int_distribution<std::size_t> size(0, 4096);
    const std::string garbage = random_bytes(rng, size(rng));
    const std::vector<Frame> frames =
        decode_in_slices(rng, decoder, garbage);
    for (const Frame& frame : frames) {
      (void)assembler.accept(frame);
    }
    decoder.finish();
    // Whatever happened, the decoder is in a defined state with bounded
    // buffering; that it didn't crash or trip ASan is the real assert.
    EXPECT_LE(decoder.buffered_bytes(), 4096u + kFrameHeaderBytes + 4096u);
  }
}

TEST(WireFuzz, DecoderBufferStaysBoundedOnLargeStreams) {
  // 10k small frames fed in slices: the already-decoded prefix must be
  // dropped as we go, not accumulated for the stream's lifetime.
  std::mt19937_64 rng(31337);
  std::string stream;
  FrameHeader header;
  for (int i = 0; i < 10000; ++i) {
    header.chunk_index = static_cast<std::uint32_t>(i);
    stream += encode_frame(header, "0123456789");
  }
  FrameDecoder decoder;
  std::size_t offset = 0;
  std::size_t max_buffered = 0;
  Frame frame;
  while (offset < stream.size()) {
    const std::size_t n = std::min<std::size_t>(4096, stream.size() - offset);
    decoder.feed(std::string_view(stream).substr(offset, n));
    offset += n;
    while (decoder.next(frame)) {
    }
    max_buffered = std::max(max_buffered, decoder.buffered_bytes());
  }
  EXPECT_TRUE(decoder.finish());
  EXPECT_LT(max_buffered, 2 * 4096u);
}

TEST(ErrorPayload, RoundTripsEveryCode) {
  for (const ErrorCode code :
       {ErrorCode::kQueueFull, ErrorCode::kRateLimited, ErrorCode::kDraining,
        ErrorCode::kDeadlineExpired, ErrorCode::kCancelled,
        ErrorCode::kBadCircuit, ErrorCode::kInternal}) {
    const ServiceError error =
        make_error(code, "detail: with punctuation, retryable=weird", 1234);
    const std::string payload = encode_error_payload(error);
    const ServiceError parsed = parse_error_payload(payload);
    EXPECT_EQ(parsed.code, error.code) << payload;
    EXPECT_EQ(parsed.retryable, error.retryable) << payload;
    EXPECT_EQ(parsed.retry_after_ms, 1234u) << payload;
    EXPECT_EQ(parsed.message, error.message) << payload;
    // The retryable bit defaults from the taxonomy, not the caller.
    EXPECT_EQ(error.retryable, error_code_retryable(code));
  }
}

TEST(ErrorPayload, EncodedFormMatchesTheDocumentedShape) {
  const std::string payload = encode_error_payload(
      make_error(ErrorCode::kQueueFull, "server request queue is full", 120));
  EXPECT_EQ(payload,
            "E1 queue_full retryable=1 retry_after_ms=120: "
            "server request queue is full");
}

TEST(ErrorPayload, LegacyPlainTextMapsToOpaqueInternal) {
  // Old servers sent free-form text; new clients must still read it.
  const ServiceError legacy =
      parse_error_payload("deadline expired before sampling began");
  EXPECT_EQ(legacy.code, ErrorCode::kInternal);
  EXPECT_FALSE(legacy.retryable);
  EXPECT_EQ(legacy.retry_after_ms, 0u);
  EXPECT_EQ(legacy.message, "deadline expired before sampling began");
}

TEST(ErrorPayload, UnknownCodesParseAndFutureNamesAreTolerated) {
  // A newer server may send codes this client does not know; the
  // structured fields still parse (forward compatibility).
  const ServiceError future = parse_error_payload(
      "E99 solar_flare retryable=1 retry_after_ms=7: too many sunspots");
  EXPECT_EQ(static_cast<std::uint32_t>(future.code), 99u);
  EXPECT_TRUE(future.retryable);
  EXPECT_EQ(future.retry_after_ms, 7u);
  EXPECT_EQ(future.message, "too many sunspots");
}

TEST(ErrorPayload, MalformedPrefixesNeverThrowAndFallBackWhole) {
  std::mt19937_64 rng(0xE77);
  std::vector<std::string> hostile = {
      "",
      "E",
      "E1",
      "E1 ",
      "E1 queue_full",
      "E1 queue_full retryable=",
      "E1 queue_full retryable=2 retry_after_ms=0: nope",
      "E1 queue_full retryable=1 retry_after_ms=: nope",
      "E1 queue_full retryable=1 retry_after_ms=5 no-colon",
      "EX queue_full retryable=1 retry_after_ms=5: x",
      "e1 queue_full retryable=1 retry_after_ms=5: x",
  };
  for (int i = 0; i < 200; ++i) {
    hostile.push_back(random_bytes(rng, static_cast<std::size_t>(i)));
  }
  for (const std::string& payload : hostile) {
    const ServiceError parsed = parse_error_payload(payload);  // must not throw
    if (parsed.code == ErrorCode::kInternal && !parsed.retryable &&
        parsed.retry_after_ms == 0) {
      EXPECT_EQ(parsed.message, payload);
    }
  }
}

}  // namespace
}  // namespace symphase
