// Tests for detector-error-model extraction from symbolic expressions.

#include "symbolic/error_model.hpp"

#include <gtest/gtest.h>

#include "circuit/surface_code.hpp"
#include "core/symphase.hpp"

namespace symphase {
namespace {

using U32 = std::vector<std::uint32_t>;

TEST(ErrorModel, SingleBernoulliMechanism) {
  const Circuit c = parse_circuit(
      "X_ERROR(0.125) 0\n"
      "M 0\n"
      "DETECTOR rec[-1]\n"
      "OBSERVABLE_INCLUDE(0) rec[-1]\n");
  const DetectorErrorModel dem = CompiledSampler::compile(c).error_model();
  ASSERT_EQ(dem.mechanisms.size(), 1u);
  EXPECT_DOUBLE_EQ(dem.mechanisms[0].probability, 0.125);
  EXPECT_EQ(dem.mechanisms[0].detectors, U32{0});
  EXPECT_EQ(dem.mechanisms[0].observables, U32{0});
  EXPECT_EQ(dem.num_detectors, 1u);
  EXPECT_EQ(dem.num_observables, 1u);
}

TEST(ErrorModel, InvisibleFaultsDropped) {
  const Circuit c = parse_circuit(
      "Z_ERROR(0.5) 0\n"  // invisible in the Z basis
      "M 0\n"
      "DETECTOR rec[-1]\n");
  const DetectorErrorModel dem = CompiledSampler::compile(c).error_model();
  EXPECT_TRUE(dem.mechanisms.empty());
}

TEST(ErrorModel, SharedFaultAcrossDetectors) {
  // One fault seen by two detectors -> one mechanism "error(p) D0 D1".
  const Circuit c = parse_circuit(
      "X_ERROR(0.1) 0\n"
      "CNOT 0 1\n"
      "M 0 1\n"
      "DETECTOR rec[-2]\n"
      "DETECTOR rec[-1]\n");
  const DetectorErrorModel dem = CompiledSampler::compile(c).error_model();
  ASSERT_EQ(dem.mechanisms.size(), 1u);
  EXPECT_EQ(dem.mechanisms[0].detectors, (U32{0, 1}));
  EXPECT_NEAR(dem.detector_probability(0), 0.1, 1e-12);
}

TEST(ErrorModel, Depolarize1SplitsByVisibility) {
  // DEPOLARIZE1 before a Z measurement: X and Y components flip the
  // detector (each p/3), Z is invisible; the two visible patterns merge
  // into one mechanism of probability 2p/3.
  const Circuit c = parse_circuit(
      "DEPOLARIZE1(0.3) 0\n"
      "M 0\n"
      "DETECTOR rec[-1]\n");
  const DetectorErrorModel dem = CompiledSampler::compile(c).error_model();
  ASSERT_EQ(dem.mechanisms.size(), 1u);
  EXPECT_NEAR(dem.mechanisms[0].probability, 0.2, 1e-12);
  EXPECT_EQ(dem.mechanisms[0].detectors, U32{0});
}

TEST(ErrorModel, Depolarize1BothBasesSplitsThreeWays) {
  // Bell sandwich: preparing a Bell pair and un-preparing it after the
  // channel turns the Bell-basis measurement into a full Pauli
  // tomograph — qubit 1 reads the X component, qubit 0 the Z component,
  // both deterministically.
  const Circuit c = parse_circuit(
      "H 0\n"
      "CNOT 0 1\n"
      "DEPOLARIZE1(0.3) 0\n"
      "CNOT 0 1\n"
      "H 0\n"
      "M 1\n"            // fires on X and Y
      "M 0\n"            // fires on Z and Y
      "DETECTOR rec[-2]\n"
      "DETECTOR rec[-1]\n");
  const DetectorErrorModel dem = CompiledSampler::compile(c).error_model();
  // Patterns: X -> D0 (p/3), Z -> D1 (p/3), Y -> D0 D1 (p/3).
  ASSERT_EQ(dem.mechanisms.size(), 3u);
  double total = 0.0;
  for (const auto& mech : dem.mechanisms) {
    EXPECT_NEAR(mech.probability, 0.1, 1e-12);
    total += mech.probability;
  }
  EXPECT_NEAR(total, 0.3, 1e-12);
  // Symptom sets are distinct.
  EXPECT_NE(dem.mechanisms[0].detectors, dem.mechanisms[1].detectors);
}

TEST(ErrorModel, TextRendering) {
  const Circuit c = parse_circuit(
      "X_ERROR(0.25) 0\n"
      "M 0\n"
      "DETECTOR rec[-1]\n"
      "OBSERVABLE_INCLUDE(0) rec[-1]\n");
  const DetectorErrorModel dem = CompiledSampler::compile(c).error_model();
  EXPECT_EQ(dem.to_text(), "error(0.25) D0 L0\n");
}

TEST(ErrorModel, SurfaceCodeMechanismsMatchMatchingGraphShape) {
  SurfaceCodeOptions opt;
  opt.distance = 3;
  opt.rounds = 2;
  opt.data_depolarization = 0.001;
  const Circuit c = surface_code_memory(opt);
  const CompiledSampler sampler = CompiledSampler::compile(c);
  const DetectorErrorModel dem = sampler.error_model();
  EXPECT_EQ(dem.num_detectors, sampler.num_detectors());
  EXPECT_GT(dem.mechanisms.size(), 0u);
  for (const auto& mech : dem.mechanisms) {
    // Phenomenological data noise on a surface code produces mechanisms
    // touching at most 2 detectors per basis per round window — with
    // X and Z visibility combined, at most 4 symptoms here.
    EXPECT_LE(mech.detectors.size(), 4u);
    EXPECT_GT(mech.probability, 0.0);
    // Sorted, duplicate-free symptom lists.
    EXPECT_TRUE(std::is_sorted(mech.detectors.begin(),
                               mech.detectors.end()));
    EXPECT_TRUE(std::adjacent_find(mech.detectors.begin(),
                                   mech.detectors.end()) ==
                mech.detectors.end());
  }
  // DEM marginals agree with the sampler's exact marginals to O(p^2).
  for (std::size_t d = 0; d < dem.num_detectors; ++d) {
    EXPECT_NEAR(dem.detector_probability(d),
                sampler.detector_probability(d), 1e-4);
  }
}

TEST(ErrorModel, MeasurementFlipMechanismsSpanRounds) {
  RepetitionCodeOptions opt;
  opt.distance = 3;
  opt.rounds = 3;
  opt.measurement_error_probability = 0.01;
  Circuit c = repetition_code_memory(opt);
  const std::size_t total = c.num_measurements();
  const auto rec = [&](std::size_t absolute) {
    return make_rec_target(static_cast<std::uint32_t>(total - absolute));
  };
  const std::size_t a = opt.distance - 1;
  for (std::size_t k = 0; k < a; ++k) {
    c.append(GateType::DETECTOR, {rec(k)});
  }
  for (std::size_t round = 1; round < opt.rounds; ++round) {
    for (std::size_t k = 0; k < a; ++k) {
      c.append(GateType::DETECTOR,
               {rec(round * a + k), rec((round - 1) * a + k)});
    }
  }
  const DetectorErrorModel dem = CompiledSampler::compile(c).error_model();
  // A measurement flip in round t fires the round-t and round-(t+1)
  // detectors of that ancilla (or just round-t for the last round):
  // every mechanism has 1 or 2 symptoms.
  ASSERT_EQ(dem.mechanisms.size(), opt.rounds * a);
  std::size_t two_symptom = 0;
  for (const auto& mech : dem.mechanisms) {
    EXPECT_NEAR(mech.probability, 0.01, 1e-12);
    EXPECT_TRUE(mech.detectors.size() == 1 || mech.detectors.size() == 2);
    two_symptom += mech.detectors.size() == 2;
  }
  EXPECT_EQ(two_symptom, (opt.rounds - 1) * a);
}

}  // namespace
}  // namespace symphase

namespace symphase {
namespace {

TEST(ErrorModel, CanonicalizeMergesAcrossGroups) {
  // Two independent X error sites feeding the same detector.
  const Circuit c = parse_circuit(
      "X_ERROR(0.1) 0\n"
      "X_ERROR(0.2) 0\n"
      "M 0\n"
      "DETECTOR rec[-1]\n");
  const DetectorErrorModel dem = CompiledSampler::compile(c).error_model();
  ASSERT_EQ(dem.mechanisms.size(), 2u);
  const DetectorErrorModel canon = dem.canonicalized();
  ASSERT_EQ(canon.mechanisms.size(), 1u);
  // XOR of Bernoulli(0.1) and Bernoulli(0.2).
  EXPECT_NEAR(canon.mechanisms[0].probability, 0.1 * 0.8 + 0.9 * 0.2,
              1e-12);
  EXPECT_NEAR(canon.detector_probability(0), dem.detector_probability(0),
              1e-12);
}

TEST(ErrorModel, CanonicalizePreservesDistinctSymptoms) {
  const Circuit c = parse_circuit(
      "X_ERROR(0.1) 0\n"
      "X_ERROR(0.2) 1\n"
      "M 0 1\n"
      "DETECTOR rec[-2]\n"
      "DETECTOR rec[-1]\n");
  const DetectorErrorModel canon =
      CompiledSampler::compile(c).error_model().canonicalized();
  ASSERT_EQ(canon.mechanisms.size(), 2u);
  EXPECT_NE(canon.mechanisms[0].detectors, canon.mechanisms[1].detectors);
}

}  // namespace
}  // namespace symphase
