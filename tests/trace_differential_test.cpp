// Tracing must observe, never perturb: with tracing enabled, every
// transport's output bytes must equal the trace-off run, the fused
// group's spans must share one group id, and the per-request timing
// summaries (kFrameTiming final frame, HTTP Server-Timing trailer)
// must partition the end-to-end time. Runs under ASan+UBSan and TSan
// in CI.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/session.hpp"
#include "circuit/parser.hpp"
#include "common/trace.hpp"
#include "http/json.hpp"
#include "http_test_client.hpp"
#include "sampler/sample_writer.hpp"
#include "service/request.hpp"
#include "service/service.hpp"
#include "service/wire.hpp"

namespace symphase {
namespace {

constexpr const char* kCircuit =
    "H 0\nCNOT 0 1\nX_ERROR(0.05) 0 1\nM 0 1\n";
constexpr const char* kDetCircuit =
    "X_ERROR(0.1) 0 1\n"
    "CNOT 0 1\n"
    "M 0 1\n"
    "DETECTOR rec[-1]\n"
    "DETECTOR rec[-2]\n"
    "OBSERVABLE_INCLUDE(0) rec[-2]\n";

/// Collects frames across requests; thread-safe.
class FrameCollector {
 public:
  FrameFn fn() {
    return [this](const FrameHeader& header, std::string_view payload) {
      const std::lock_guard<std::mutex> lock(mutex_);
      frames_.push_back(Frame{header, std::string(payload)});
    };
  }

  std::vector<Frame> frames() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return frames_;
  }

  /// The request's frame stream re-encoded to raw bytes — the exact
  /// transport-level output the differential pins.
  std::string bytes_for(std::uint64_t request_id) const {
    std::string out;
    for (const Frame& frame : frames()) {
      if (frame.header.request_id == request_id) {
        out += encode_frame(frame.header, frame.payload);
      }
    }
    return out;
  }

  MessageAssembler::Message message_for(std::uint64_t request_id) const {
    MessageAssembler assembler;
    std::optional<MessageAssembler::Message> result;
    for (const Frame& frame : frames()) {
      if (frame.header.request_id != request_id) {
        continue;
      }
      if (auto message = assembler.accept(frame)) {
        result = std::move(message);
      }
      EXPECT_FALSE(assembler.failed()) << assembler.error();
    }
    EXPECT_TRUE(result.has_value())
        << "request " << request_id << " never completed";
    return result.value_or(MessageAssembler::Message{});
  }

 private:
  mutable std::mutex mutex_;
  std::vector<Frame> frames_;
};

class TraceDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::set_enabled(false);
    trace::discard_all_for_testing();
  }
  void TearDown() override {
    trace::set_enabled(false);
    trace::discard_all_for_testing();
  }
};

/// The request matrix one service run answers: both verbs, both
/// backends, multi-chunk streams (small frame payloads).
std::vector<SampleRequest> matrix() {
  std::vector<SampleRequest> requests;
  std::size_t i = 0;
  for (const SampleBackend backend :
       {SampleBackend::kSymPhase, SampleBackend::kFrameSimulator}) {
    for (const bool detect : {false, true}) {
      SampleRequest request = detect
                                  ? SampleRequest::detect(kDetCircuit, 9000)
                                  : SampleRequest::sample(kCircuit, 9000);
      request.task.backend = backend;
      request.task.seed = 100 + i;
      request.format = detect ? SampleFormat::kDets : SampleFormat::kB8;
      requests.push_back(request);
      ++i;
    }
  }
  return requests;
}

std::map<std::uint64_t, std::string> run_matrix(
    const std::vector<SampleRequest>& requests) {
  FrameCollector collector;
  {
    SamplingService service(
        {.num_workers = 2, .max_frame_payload = 512});
    for (std::size_t i = 0; i < requests.size(); ++i) {
      service.submit(i + 1, requests[i], collector.fn(), /*client_id=*/0,
                     /*rejection=*/nullptr, /*transport=*/"frame");
    }
    service.drain();
  }
  std::map<std::uint64_t, std::string> bytes;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    bytes[i + 1] = collector.bytes_for(i + 1);
    EXPECT_FALSE(bytes[i + 1].empty()) << "request " << i + 1;
  }
  return bytes;
}

TEST_F(TraceDifferentialTest, FrameBytesIdenticalWithTracingOnAndOff) {
  const std::vector<SampleRequest> requests = matrix();
  const auto off = run_matrix(requests);

  trace::set_enabled(true);
  const auto on = run_matrix(requests);
  trace::set_enabled(false);

  ASSERT_EQ(off.size(), on.size());
  for (const auto& [id, bytes] : off) {
    EXPECT_EQ(on.at(id), bytes) << "request " << id;
  }

  // The traced run actually recorded the lifecycle: queue, compile,
  // execute, and emit spans all present for real request ids.
  const JsonValue doc = parse_json(trace::drain_json());
  std::set<std::string> names;
  std::set<std::uint64_t> ids;
  for (const JsonValue& event : doc.find("traceEvents")->as_array()) {
    names.insert(event.find("name")->as_string());
    ids.insert(event.find("args")->find("id")->as_u64());
  }
  for (const char* required :
       {"accept", "queue", "compile", "execute", "emit", "fill", "done"}) {
    EXPECT_EQ(names.count(required), 1u) << required;
  }
  for (std::uint64_t id = 1; id <= requests.size(); ++id) {
    EXPECT_EQ(ids.count(id), 1u) << "request " << id;
  }
}

TEST_F(TraceDifferentialTest, HttpBytesIdenticalWithTracingOnAndOff) {
  http_testing::GatewayHarness harness;
  http_testing::HttpClient client(harness.http_port());
  std::ostringstream body;
  body << "{\"circuit\":\"" << http_testing::json_escape(kDetCircuit)
       << "\",\"shots\":6000,\"seed\":5,\"format\":\"dets\"}";

  const auto fetch = [&]() {
    client.send_request("POST", "/v1/detect", body.str());
    http_testing::HttpResponse response = client.read_response();
    EXPECT_EQ(response.status, 200) << response.body;
    EXPECT_TRUE(response.chunked_complete);
    return response;
  };

  const http_testing::HttpResponse off = fetch();
  trace::set_enabled(true);
  const http_testing::HttpResponse on = fetch();
  EXPECT_EQ(on.body, off.body);

  // GET /v1/trace serves the recorded events as Chrome trace JSON.
  // The tail of the lifecycle ("execute", "done") is recorded on the
  // worker thread after the final frame ships, so tracing stays on and
  // we scrape until it lands — each scrape consumes, so accumulate
  // across them.
  std::set<std::string> names;
  for (int attempt = 0; attempt < 250 && names.count("done") == 0;
       ++attempt) {
    client.send_request("GET", "/v1/trace");
    const http_testing::HttpResponse trace_response = client.read_response();
    ASSERT_EQ(trace_response.status, 200);
    const JsonValue doc = parse_json(trace_response.body);
    for (const JsonValue& event : doc.find("traceEvents")->as_array()) {
      names.insert(event.find("name")->as_string());
    }
    if (names.count("done") == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_EQ(names.count("queue"), 1u);
  EXPECT_EQ(names.count("execute"), 1u);
  EXPECT_EQ(names.count("done"), 1u);
  // (That each drain consumes is pinned deterministically in
  // trace_test.cpp — shard-fill spans on pool threads can straggle
  // past "done" here, so an emptiness check would race.)
}

TEST_F(TraceDifferentialTest, FusedGroupSharesOneGroupId) {
  trace::set_enabled(true);
  std::vector<std::uint64_t> tickets;
  ServiceStats stats;
  FrameCollector collector;
  {
  SamplingService service({.num_workers = 1});

  // Park the single worker inside request 1 until the same-circuit
  // requests 2..4 are queued; the worker then claims them as one fused
  // group.
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  auto first = std::make_shared<std::atomic<bool>>(true);
  const FrameFn record = collector.fn();
  service.submit(
      1, SampleRequest::sample("X 0\nM 0 1 2\n", 100),
      [&, first, record](const FrameHeader& header, std::string_view payload) {
        if (first->exchange(false)) {
          std::unique_lock<std::mutex> lock(mutex);
          cv.wait(lock, [&] { return release; });
        }
        record(header, payload);
      },
      /*client_id=*/0, /*rejection=*/nullptr, /*transport=*/"frame");

  for (std::uint64_t id = 2; id <= 4; ++id) {
    SampleRequest request = SampleRequest::sample(kCircuit, 2000);
    request.task.seed = id;
    tickets.push_back(service.submit(id, request, collector.fn(),
                                     /*client_id=*/0, /*rejection=*/nullptr,
                                     /*transport=*/"frame"));
  }
  {
    const std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  service.drain();
  stats = service.stats();
  }  // Joins the worker: every lifecycle span is recorded past here.
  ASSERT_EQ(stats.fused_requests, 3u) << stats.to_line();
  ASSERT_EQ(stats.fusion_groups, 1u) << stats.to_line();
  trace::set_enabled(false);

  // Every span of the three members carries the same group id: the
  // group leader's ticket.
  const JsonValue doc = parse_json(trace::drain_json());
  std::set<std::uint64_t> member_groups;
  std::uint64_t member_spans = 0;
  for (const JsonValue& event : doc.find("traceEvents")->as_array()) {
    const JsonValue* args = event.find("args");
    const std::uint64_t ticket = args->find("ticket")->as_u64();
    const std::string& name = event.find("name")->as_string();
    if (name != "queue" && name != "compile" && name != "fill" &&
        name != "emit" && name != "execute") {
      continue;
    }
    for (const std::uint64_t member : tickets) {
      if (ticket == member) {
        member_groups.insert(args->find("group")->as_u64());
        ++member_spans;
      }
    }
  }
  EXPECT_GE(member_spans, 9u);  // >= queue+compile+execute per member
  ASSERT_EQ(member_groups.size(), 1u);
  EXPECT_EQ(*member_groups.begin(), *std::min_element(tickets.begin(),
                                                      tickets.end()));
}

/// Parses "name;dur=12.345" stage values out of a Server-Timing string.
std::map<std::string, double> parse_server_timing(const std::string& value) {
  std::map<std::string, double> stages;
  std::istringstream iss(value);
  std::string item;
  while (std::getline(iss, item, ',')) {
    const std::size_t semi = item.find(";dur=");
    EXPECT_NE(semi, std::string::npos) << item;
    if (semi == std::string::npos) {
      continue;
    }
    std::size_t start = item.find_first_not_of(' ');
    stages[item.substr(start, semi - start)] =
        std::stod(item.substr(semi + 5));
  }
  return stages;
}

void expect_stage_partition(const std::map<std::string, double>& stages) {
  for (const char* name : {"queue", "compile", "execute", "emit", "total"}) {
    ASSERT_EQ(stages.count(name), 1u) << name;
  }
  const double sum = stages.at("queue") + stages.at("compile") +
                     stages.at("execute") + stages.at("emit");
  // Each stage truncates to µs independently; the sum may undershoot
  // total by < 4 µs (and never overshoot by more than rounding).
  EXPECT_NEAR(sum, stages.at("total"), 0.005) << "ms";
  EXPECT_GT(stages.at("total"), 0.0);
}

TEST_F(TraceDifferentialTest, FrameTimingSummaryPartitionsEndToEnd) {
  FrameCollector collector;
  SampleRequest request = SampleRequest::sample(kCircuit, 9000);
  request.want_timing = true;

  // The `timing=1` directive survives the wire codec.
  const SampleRequest decoded =
      parse_request_payload(encode_request_payload(request));
  EXPECT_TRUE(decoded.want_timing);
  EXPECT_FALSE(SampleRequest::sample(kCircuit, 1).want_timing);

  {
    SamplingService service({.num_workers = 1});
    service.submit(1, request, collector.fn(), /*client_id=*/0,
                   /*rejection=*/nullptr, /*transport=*/"frame");
    service.drain();
  }
  const std::vector<Frame> frames = collector.frames();
  ASSERT_FALSE(frames.empty());
  const Frame& last = frames.back();
  EXPECT_EQ(last.header.flags, kFrameLast | kFrameTiming);

  const MessageAssembler::Message message = collector.message_for(1);
  EXPECT_FALSE(message.error) << message.error_text;
  EXPECT_EQ(message.timing, last.payload);
  // The timing payload annotates; the data bytes still match a direct
  // session run.
  const SimulatorSession session(parse_circuit(kCircuit));
  std::ostringstream direct;
  WriterSink sink(direct, request.format);
  session.run(request.task, sink);
  EXPECT_EQ(message.payload, direct.str());

  expect_stage_partition(parse_server_timing(message.timing));
}

TEST_F(TraceDifferentialTest, HttpServerTimingTrailerPartitionsEndToEnd) {
  http_testing::GatewayHarness harness;
  http_testing::HttpClient client(harness.http_port());
  std::ostringstream body;
  body << "{\"circuit\":\"" << http_testing::json_escape(kCircuit)
       << "\",\"shots\":4000,\"seed\":11}";
  client.send_request("POST", "/v1/sample", body.str());
  const http_testing::HttpResponse response = client.read_response();
  ASSERT_EQ(response.status, 200) << response.body;
  ASSERT_TRUE(response.chunked_complete);

  const std::string* declared = response.header("trailer");
  ASSERT_NE(declared, nullptr);
  EXPECT_EQ(*declared, "Server-Timing");
  const std::string* timing = response.trailer("server-timing");
  ASSERT_NE(timing, nullptr);
  expect_stage_partition(parse_server_timing(*timing));
}

}  // namespace
}  // namespace symphase
