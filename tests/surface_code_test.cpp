// Tests for the rotated surface-code generator: layout invariants
// (stabilizer algebra), noiseless determinism of every detector, error
// propagation, and below-threshold logical error suppression.

#include "circuit/surface_code.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/symphase.hpp"
#include "pauli/pauli_string.hpp"

namespace symphase {
namespace {

double row_mean(const BitMatrix& m, std::size_t row) {
  std::size_t ones = 0;
  for (std::size_t w = 0; w < words_for_bits(m.cols()); ++w) {
    ones += static_cast<std::size_t>(popcount(m.row(row)[w]));
  }
  return static_cast<double>(ones) / static_cast<double>(m.cols());
}

PauliString check_to_pauli(const SurfaceCodeLayout& layout,
                           const SurfaceCodeLayout::Check& check) {
  PauliString p(layout.num_data);
  for (const std::uint32_t q : check.data) {
    p.set_pauli(q, check.is_z ? SinglePauli::Z : SinglePauli::X);
  }
  return p;
}

class SurfaceCodeLayoutTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SurfaceCodeLayoutTest, CheckCountAndWeights) {
  const std::size_t d = GetParam();
  const SurfaceCodeLayout layout = surface_code_layout(d);
  EXPECT_EQ(layout.num_data, d * d);
  EXPECT_EQ(layout.checks.size(), d * d - 1);
  std::size_t z_checks = 0;
  for (const auto& check : layout.checks) {
    EXPECT_TRUE(check.data.size() == 2 || check.data.size() == 4);
    z_checks += check.is_z;
  }
  // Z and X checks split evenly.
  EXPECT_EQ(z_checks, (d * d - 1) / 2);
}

TEST_P(SurfaceCodeLayoutTest, ChecksCommutePairwise) {
  const SurfaceCodeLayout layout = surface_code_layout(GetParam());
  std::vector<PauliString> paulis;
  for (const auto& check : layout.checks) {
    paulis.push_back(check_to_pauli(layout, check));
  }
  for (std::size_t a = 0; a < paulis.size(); ++a) {
    for (std::size_t b = a + 1; b < paulis.size(); ++b) {
      ASSERT_TRUE(paulis[a].commutes_with(paulis[b]))
          << "checks " << a << " and " << b << " anticommute";
    }
  }
}

TEST_P(SurfaceCodeLayoutTest, LogicalZCommutesAndIsNontrivial) {
  const SurfaceCodeLayout layout = surface_code_layout(GetParam());
  PauliString logical(layout.num_data);
  for (const std::uint32_t q : layout.logical_z) {
    logical.set_pauli(q, SinglePauli::Z);
  }
  for (const auto& check : layout.checks) {
    ASSERT_TRUE(logical.commutes_with(check_to_pauli(layout, check)));
  }
  EXPECT_EQ(logical.weight(), layout.distance);
  // A vertical X string (left column) anticommutes with logical Z
  // exactly once: they form a conjugate logical pair.
  PauliString logical_x(layout.num_data);
  for (std::size_t i = 0; i < layout.distance; ++i) {
    logical_x.set_pauli(static_cast<std::uint32_t>(i * layout.distance),
                        SinglePauli::X);
  }
  EXPECT_FALSE(logical.commutes_with(logical_x));
  for (const auto& check : layout.checks) {
    ASSERT_TRUE(logical_x.commutes_with(check_to_pauli(layout, check)))
        << "logical X not a logical operator";
  }
}

TEST_P(SurfaceCodeLayoutTest, AncillaIdsAreDistinct) {
  const SurfaceCodeLayout layout = surface_code_layout(GetParam());
  std::set<std::uint32_t> ids;
  for (const auto& check : layout.checks) {
    EXPECT_GE(check.ancilla, layout.num_data);
    ids.insert(check.ancilla);
  }
  EXPECT_EQ(ids.size(), layout.checks.size());
}

INSTANTIATE_TEST_SUITE_P(Distances, SurfaceCodeLayoutTest,
                         ::testing::Values(3, 5, 7));

TEST(SurfaceCodeLayout, RejectsBadDistance) {
  EXPECT_THROW(surface_code_layout(2), std::invalid_argument);
  EXPECT_THROW(surface_code_layout(4), std::invalid_argument);
  EXPECT_THROW(surface_code_layout(1), std::invalid_argument);
}

TEST(SurfaceCodeMemory, NoiselessDetectorsAllSilent) {
  for (const std::size_t d : {3u, 5u}) {
    SurfaceCodeOptions opt;
    opt.distance = d;
    opt.rounds = 3;
    const Circuit c = surface_code_memory(opt);
    const CompiledSampler sampler = CompiledSampler::compile(c);
    // Expected detector count: first round d^2-1 over 2 (Z only), then
    // (rounds-1)*(d^2-1), then final (d^2-1)/2 Z parity checks.
    const std::size_t checks = d * d - 1;
    EXPECT_EQ(sampler.num_detectors(),
              checks / 2 + (opt.rounds - 1) * checks + checks / 2);
    EXPECT_EQ(sampler.num_observables(), 1u);
    for (std::size_t k = 0; k < sampler.num_detectors(); ++k) {
      ASSERT_TRUE(sampler.detector_expressions()[k].symbols.empty())
          << "detector " << k << " not deterministic-zero at d=" << d;
    }
    EXPECT_TRUE(sampler.observable_expressions()[0].symbols.empty());
  }
}

TEST(SurfaceCodeMemory, InjectedXErrorFiresAdjacentDetectors) {
  SurfaceCodeOptions opt;
  opt.distance = 3;
  opt.rounds = 2;
  // A deterministic X on the central data qubit (id 4) before any round.
  Circuit c(17);
  c.append1(GateType::X, 4);
  c.append_circuit(surface_code_memory(opt));
  const CompiledSampler sampler = CompiledSampler::compile(c);
  const auto events = sampler.sample_detection_events(64, 1);
  // The central qubit participates in exactly two Z checks; the X error
  // fires those two first-round detectors (and the inter-round
  // comparisons stay silent because the flip persists).
  std::size_t firing = 0;
  for (std::size_t k = 0; k < sampler.num_detectors(); ++k) {
    const double rate = row_mean(events.detectors, k);
    EXPECT_TRUE(rate == 0.0 || rate == 1.0);
    firing += rate == 1.0;
  }
  EXPECT_EQ(firing, 2u);
  // A single X on the top row also flips the logical readout parity iff
  // it lies on the logical support; qubit 4 is row 1 -> no flip.
  EXPECT_DOUBLE_EQ(row_mean(events.observables, 0), 0.0);
}

TEST(SurfaceCodeMemory, LogicalSupportErrorFlipsObservable) {
  SurfaceCodeOptions opt;
  opt.distance = 3;
  opt.rounds = 1;
  Circuit c(17);
  // X on all three top-row data qubits = logical X: crosses logical Z
  // once (odd overlap) -> observable flips... a full logical X chain
  // flips the observable without firing any detector.
  c.append(GateType::X, {0, 3, 6});  // left column: vertical X string
  c.append_circuit(surface_code_memory(opt));
  const CompiledSampler sampler = CompiledSampler::compile(c);
  const auto events = sampler.sample_detection_events(32, 2);
  for (std::size_t k = 0; k < sampler.num_detectors(); ++k) {
    ASSERT_DOUBLE_EQ(row_mean(events.detectors, k), 0.0) << k;
  }
  EXPECT_DOUBLE_EQ(row_mean(events.observables, 0), 1.0);
}

TEST(SurfaceCodeMemory, DataNoiseDetectorsMatchFrameSimulator) {
  SurfaceCodeOptions opt;
  opt.distance = 3;
  opt.rounds = 2;
  opt.data_depolarization = 0.02;
  opt.measurement_flip_probability = 0.01;
  const Circuit c = surface_code_memory(opt);
  const CompiledSampler sym = CompiledSampler::compile(c);
  FrameSimulator frame(c, 5);
  constexpr std::size_t kShots = 50000;
  const auto se = sym.sample_detection_events(kShots, 6);
  const auto fe = frame.sample_detection_events(kShots, 7);
  for (std::size_t k = 0; k < sym.num_detectors(); ++k) {
    const double pa = row_mean(se.detectors, k);
    const double pb = row_mean(fe.detectors, k);
    const double exact = sym.detector_probability(k);
    const double sigma =
        std::sqrt(std::max(exact * (1 - exact), 1e-6) / kShots);
    ASSERT_NEAR(pa, exact, 5 * sigma + 2e-3) << "detector " << k;
    ASSERT_NEAR(pa, pb, 10 * sigma + 3e-3) << "detector " << k;
  }
}

TEST(SurfaceCodeMemory, CircuitNoiseCompilesAndSamples) {
  SurfaceCodeOptions opt;
  opt.distance = 5;
  opt.rounds = 5;
  opt.data_depolarization = 0.003;
  opt.gate_depolarization = 0.002;
  opt.measurement_flip_probability = 0.004;
  const Circuit c = surface_code_memory(opt);
  const CompiledSampler sampler = CompiledSampler::compile(c);
  const auto events = sampler.sample_detection_events(4096, 8);
  // Smoke invariants: detectors fire at low but nonzero rates.
  double total = 0;
  for (std::size_t k = 0; k < sampler.num_detectors(); ++k) {
    total += row_mean(events.detectors, k);
  }
  EXPECT_GT(total, 0.0);
  EXPECT_LT(total / static_cast<double>(sampler.num_detectors()), 0.2);
}

TEST(SurfaceCodeMemory, RawObservableFlipMatchesParityFormula) {
  // One round of DEPOLARIZE1(p) on the data; the *undecoded* observable
  // (parity of the top data row) flips when an odd number of its d
  // qubits took an X-component fault. Each qubit does so with
  // q = 2p/3, independently, so P(flip) = (1 - (1-2q)^d) / 2 exactly.
  constexpr double kP = 0.01;
  constexpr std::size_t kShots = 200000;
  for (const std::size_t d : {3u, 5u}) {
    SurfaceCodeOptions opt;
    opt.distance = d;
    opt.rounds = 1;
    opt.data_depolarization = kP;
    const Circuit c = surface_code_memory(opt);
    const CompiledSampler sampler = CompiledSampler::compile(c);
    const double q = 2.0 * kP / 3.0;
    const double expected =
        (1.0 - std::pow(1.0 - 2.0 * q, static_cast<double>(d))) / 2.0;
    EXPECT_NEAR(sampler.observable_probability(0), expected, 1e-12)
        << "d=" << d;
    const auto events = sampler.sample_detection_events(kShots, d);
    EXPECT_NEAR(row_mean(events.observables, 0), expected,
                5 * std::sqrt(std::max(expected * (1 - expected), 1e-7) /
                              kShots) +
                    1e-3);
  }
}

}  // namespace
}  // namespace symphase
