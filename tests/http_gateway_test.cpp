// The HTTP/JSON gateway (src/http/): endpoints, error mapping, drain
// behavior, metrics, and structured logs against an in-process
// SocketServer running both listeners. The byte-identity of streamed
// sample bodies with the frame protocol and direct sessions over the
// full data/ corpus is pinned separately in
// service_differential_test.cpp; here a small circuit checks the
// plumbing end to end.

#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/session.hpp"
#include "circuit/parser.hpp"
#include "http/json.hpp"
#include "http_test_client.hpp"
#include "net/server.hpp"
#include "sampler/sample_writer.hpp"

namespace symphase {
namespace {

using http_testing::GatewayHarness;
using http_testing::HttpClient;
using http_testing::HttpResponse;

std::string direct_output(const std::string& circuit_text,
                          const SampleTask& task, SampleFormat format) {
  const SimulatorSession session(parse_circuit(circuit_text));
  std::ostringstream oss;
  WriterSink sink(oss, format);
  session.run(task, sink);
  return oss.str();
}

constexpr const char* kBellCircuit = "H 0\nCNOT 0 1\nM 0 1\n";

TEST(HttpGateway, HealthzAndStatsServeJson) {
  GatewayHarness harness;
  HttpClient client(harness.http_port());
  client.send_request("GET", "/healthz");
  const HttpResponse health = client.read_response();
  EXPECT_EQ(health.status, 200);
  ASSERT_NE(health.header("content-type"), nullptr);
  EXPECT_EQ(*health.header("content-type"), "application/json");
  const JsonValue parsed = parse_json(health.body);
  EXPECT_EQ(parsed.find("state")->as_string(), "accepting");
  EXPECT_EQ(parsed.find("queue_depth")->as_u64(), 0u);

  // Keep-alive: the same connection serves the next request.
  client.send_request("GET", "/v1/stats");
  const HttpResponse stats = client.read_response();
  EXPECT_EQ(stats.status, 200);
  const JsonValue counters = parse_json(stats.body);
  EXPECT_EQ(counters.find("completed")->as_u64(),
            harness.server().service().stats().completed);
  ASSERT_NE(counters.find("served"), nullptr);
  EXPECT_NE(counters.find("served")->find("normal"), nullptr);
}

TEST(HttpGateway, SampleStreamsBytesIdenticalToDirectSession) {
  GatewayHarness harness;
  SampleTask task = SampleTask::measurements(64);
  task.seed = 11;
  task.num_threads = 2;
  const std::string expected =
      direct_output(kBellCircuit, task, SampleFormat::k01);

  HttpClient client(harness.http_port());
  client.send_request(
      "POST", "/v1/sample",
      R"({"circuit":"H 0\nCNOT 0 1\nM 0 1\n","shots":64,"seed":11,)"
      R"("threads":2,"format":"01"})");
  const HttpResponse response = client.read_response();
  EXPECT_EQ(response.status, 200);
  ASSERT_NE(response.header("transfer-encoding"), nullptr);
  EXPECT_TRUE(response.chunked_complete);
  ASSERT_NE(response.header("symphase-ticket"), nullptr);
  EXPECT_NE(*response.header("symphase-ticket"), "0");
  EXPECT_EQ(response.body, expected);

  // Same connection, detect endpoint, dets format.
  SampleTask detect_task = SampleTask::detection_events(16);
  detect_task.seed = 3;
  const std::string circuit =
      "H 0\nCNOT 0 1\nM 0 1\nDETECTOR rec[-1] rec[-2]\n";
  const std::string expected_dets =
      direct_output(circuit, detect_task, SampleFormat::kDets);
  client.send_request(
      "POST", "/v1/detect",
      R"({"circuit":"H 0\nCNOT 0 1\nM 0 1\nDETECTOR rec[-1] rec[-2]\n",)"
      R"("shots":16,"seed":3})");
  const HttpResponse dets = client.read_response();
  EXPECT_EQ(dets.status, 200);
  EXPECT_EQ(dets.body, expected_dets);
}

TEST(HttpGateway, ErrorMappingIsTotal) {
  GatewayHarness harness;
  {
    // Unparseable circuit -> 400 bad_circuit with the structured body.
    HttpClient client(harness.http_port());
    client.send_request("POST", "/v1/sample",
                        R"({"circuit":"NOT_A_GATE 0\nM 0\n","shots":4})");
    const HttpResponse response = client.read_response();
    EXPECT_EQ(response.status, 400);
    const JsonValue body = parse_json(response.body);
    EXPECT_EQ(body.find("error")->as_string(), "bad_circuit");
    EXPECT_FALSE(body.find("retryable")->as_bool());

    // Unknown JSON field -> 400 before touching the service.
    client.send_request("POST", "/v1/sample", R"({"shotz":4})");
    EXPECT_EQ(client.read_response().status, 400);

    // Malformed JSON -> 400.
    client.send_request("POST", "/v1/sample", "{nope");
    EXPECT_EQ(client.read_response().status, 400);

    // Unknown route -> 404; wrong method -> 405 with Allow.
    client.send_request("GET", "/nope");
    EXPECT_EQ(client.read_response().status, 404);
    client.send_request("GET", "/v1/sample");
    const HttpResponse wrong_method = client.read_response();
    EXPECT_EQ(wrong_method.status, 405);
    ASSERT_NE(wrong_method.header("allow"), nullptr);
    EXPECT_EQ(*wrong_method.header("allow"), "POST");

    // Cancel with a garbage ticket -> 400; unknown ticket -> 404.
    client.send_request("POST", "/v1/cancel/abc");
    EXPECT_EQ(client.read_response().status, 400);
    client.send_request("POST", "/v1/cancel/999999");
    const HttpResponse unknown = client.read_response();
    EXPECT_EQ(unknown.status, 404);
    EXPECT_EQ(parse_json(unknown.body).find("error")->as_string(),
              "not_found");
  }
  {
    // Rate limiting -> 429 with a Retry-After hint in whole seconds.
    SocketServerOptions options = GatewayHarness::make_options();
    options.service.admission.client_shots_per_second = 1;
    options.service.admission.client_burst_shots = 64;
    GatewayHarness limited(options);
    HttpClient client(limited.http_port());
    client.send_request(
        "POST", "/v1/sample",
        R"({"circuit":"H 0\nCNOT 0 1\nM 0 1\n","shots":64,"seed":1})");
    EXPECT_EQ(client.read_response().status, 200);
    client.send_request(
        "POST", "/v1/sample",
        R"({"circuit":"H 0\nCNOT 0 1\nM 0 1\n","shots":64,"seed":1})");
    const HttpResponse limited_response = client.read_response();
    EXPECT_EQ(limited_response.status, 429);
    const JsonValue body = parse_json(limited_response.body);
    EXPECT_EQ(body.find("error")->as_string(), "rate_limited");
    EXPECT_TRUE(body.find("retryable")->as_bool());
    ASSERT_NE(limited_response.header("retry-after"), nullptr);
    EXPECT_GE(std::stoull(*limited_response.header("retry-after")), 1u);
  }
}

TEST(HttpGateway, ParserFailureAnswersThenCloses) {
  GatewayHarness harness;
  HttpClient client(harness.http_port());
  client.send("THIS IS NOT HTTP\r\n\r\n");
  const HttpResponse response = client.read_response();
  EXPECT_EQ(response.status, 400);
  ASSERT_NE(response.header("connection"), nullptr);
  EXPECT_EQ(*response.header("connection"), "close");
  EXPECT_TRUE(client.at_eof());
}

TEST(HttpGateway, PipelinedRequestsAnswerInOrder) {
  GatewayHarness harness;
  HttpClient client(harness.http_port());
  client.send(
      "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"
      "GET /v1/stats HTTP/1.1\r\nHost: t\r\n\r\n"
      "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
  EXPECT_EQ(client.read_response().status, 200);
  const HttpResponse stats = client.read_response();
  EXPECT_EQ(stats.status, 200);
  EXPECT_NE(stats.body.find("\"completed\""), std::string::npos);
  const HttpResponse last = client.read_response();
  EXPECT_EQ(last.status, 200);
  EXPECT_TRUE(client.at_eof());
}

TEST(HttpGateway, MetricsAgreeWithServiceStats) {
  GatewayHarness harness;
  HttpClient client(harness.http_port());
  // Two requests for the same circuit: one miss+compile, one hit.
  for (int i = 0; i < 2; ++i) {
    client.send_request(
        "POST", "/v1/sample",
        R"({"circuit":"H 0\nCNOT 0 1\nM 0 1\n","shots":32,"seed":9})");
    EXPECT_EQ(client.read_response().status, 200);
  }
  // The worker bumps `completed` after its last frame is handed off,
  // so a fast client can get here first — wait for the counter. The
  // shots-in-flight release lands separately (queue cleanup, after the
  // per-job accounting and the watchdog deregistration), so wait for
  // that gauge to settle too before snapshotting.
  ServiceStats stats = harness.server().service().stats();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (stats.completed < 2 || stats.shots_in_flight != 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << stats.to_line();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    stats = harness.server().service().stats();
  }
  ASSERT_EQ(stats.completed, 2u);

  client.send_request("GET", "/metrics");
  const HttpResponse response = client.read_response();
  EXPECT_EQ(response.status, 200);
  ASSERT_NE(response.header("content-type"), nullptr);
  EXPECT_NE(response.header("content-type")->find("text/plain"),
            std::string::npos);
  const std::string& text = response.body;

  const auto metric_value = [&text](const std::string& name) {
    const std::size_t pos = text.find("\n" + name + " ");
    EXPECT_NE(pos, std::string::npos) << name << " missing:\n" << text;
    if (pos == std::string::npos) {
      return std::uint64_t{0};
    }
    const std::size_t start = pos + name.size() + 2;
    return static_cast<std::uint64_t>(
        std::stoull(text.substr(start, text.find('\n', start) - start)));
  };
  // The acceptance set: queue depth, shots in flight, cache hit/miss,
  // per-priority served counts, request-latency histograms.
  EXPECT_EQ(metric_value("symphase_queue_depth"), stats.queue_depth);
  EXPECT_EQ(metric_value("symphase_shots_in_flight"), stats.shots_in_flight);
  EXPECT_EQ(metric_value("symphase_cache_hits_total"), stats.hits);
  EXPECT_EQ(metric_value("symphase_cache_misses_total"), stats.misses);
  EXPECT_EQ(metric_value("symphase_requests_completed_total"),
            stats.completed);
  EXPECT_EQ(metric_value("symphase_served_total{priority=\"normal\"}"),
            stats.served[static_cast<int>(RequestPriority::kNormal)]);
  EXPECT_NE(text.find("symphase_served_total{priority=\"high\"}"),
            std::string::npos);
  EXPECT_NE(text.find("http_request_duration_seconds_bucket"),
            std::string::npos);
  EXPECT_NE(
      text.find(
          "http_request_duration_seconds_bucket{endpoint=\"/v1/sample\""),
      std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(text.find("http_requests_total{endpoint=\"/v1/sample\","
                      "code=\"200\"} 2"),
            std::string::npos);

  // The registry view and the HTTP view are the same text.
  const std::string scraped = harness.server().gateway()->metrics().scrape();
  EXPECT_NE(scraped.find("symphase_cache_hits_total"), std::string::npos);
}

TEST(HttpGateway, DrainRejectsNewWorkAndCompletes) {
  SocketServerOptions options = GatewayHarness::make_options();
  options.http.drain_grace_ms = 200;
  GatewayHarness harness(options);

  // An idle keep-alive connection from before the drain.
  HttpClient idle(harness.http_port());
  idle.send_request("GET", "/healthz");
  EXPECT_EQ(idle.read_response().status, 200);

  harness.server().drain();
  // Wait for the drain to take effect (accepting flips on the loop).
  for (int i = 0; i < 100 && harness.server().service().health().accepting;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Probes still answer: /healthz reports draining with 503, /metrics
  // scrapes. New work is 503 `draining` with Connection: close.
  HttpClient probe(harness.http_port());
  probe.send_request("GET", "/healthz");
  const HttpResponse health = probe.read_response();
  EXPECT_EQ(health.status, 503);
  EXPECT_EQ(parse_json(health.body).find("state")->as_string(), "draining");

  HttpClient metrics(harness.http_port());
  metrics.send_request("GET", "/metrics");
  EXPECT_EQ(metrics.read_response().status, 200);

  HttpClient work(harness.http_port());
  work.send_request("POST", "/v1/sample",
                    R"({"circuit":"M 0\n","shots":4})");
  const HttpResponse rejected = work.read_response();
  EXPECT_EQ(rejected.status, 503);
  EXPECT_EQ(parse_json(rejected.body).find("error")->as_string(), "draining");
  ASSERT_NE(rejected.header("connection"), nullptr);
  EXPECT_EQ(*rejected.header("connection"), "close");
  EXPECT_TRUE(work.at_eof());

  // The idle connection is closed after the grace period and the loop
  // exits on its own (GatewayHarness::~GatewayHarness joins).
  EXPECT_TRUE(idle.at_eof());
}

TEST(HttpGateway, DrainGraceExpiringMidStreamClosesAfterResponse) {
  SocketServerOptions options = GatewayHarness::make_options();
  options.http.drain_grace_ms = 50;
  // Tiny outbound cap: the worker backpressures against the unread
  // response, keeping the connection busy while the grace expires.
  options.max_outbound_buffer = 4096;
  GatewayHarness harness(options);

  HttpClient client(harness.http_port());
  // ~32 MB of '0'/'1' rows — far more than the outbound cap plus both
  // kernel socket buffers, so the stream stays mid-flight for as long
  // as this test refuses to read.
  client.send_request("POST", "/v1/sample",
                      R"({"circuit":"M 0\n","shots":16000000,"seed":7,)"
                      R"("format":"01"})");

  // Wait until the request is executing, then drain and let the grace
  // expire while the connection is still streaming.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (harness.server().service().health().active_jobs == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "request never started executing";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  harness.server().drain();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  // The in-flight response finishes, complete and intact...
  const HttpResponse response = client.read_response();
  EXPECT_EQ(response.status, 200);
  EXPECT_TRUE(response.chunked_complete);
  EXPECT_EQ(response.body.size(), 2u * 16000000u);
  // ...and then the connection closes. Before the busy-aware grace
  // handling, the connection returned to keep-alive and lingered until
  // the client went away, hanging the server's drain; at_eof() would
  // sit in recv() until the 10 s client timeout.
  const auto close_start = std::chrono::steady_clock::now();
  EXPECT_TRUE(client.at_eof());
  EXPECT_LT(std::chrono::steady_clock::now() - close_start,
            std::chrono::seconds(5));
}

TEST(HttpGateway, SlowLorisGets408) {
  SocketServerOptions options = GatewayHarness::make_options();
  options.http.header_timeout_ms = 100;
  GatewayHarness harness(options);
  HttpClient client(harness.http_port());
  client.send("GET /healthz HTT");  // ... and never finishes the head.
  const HttpResponse response = client.read_response();
  EXPECT_EQ(response.status, 408);
  EXPECT_TRUE(client.at_eof());
}

TEST(HttpGateway, StructuredLogsCaptureRequests) {
  SocketServerOptions options = GatewayHarness::make_options();
  std::mutex log_mutex;
  std::vector<std::string> lines;
  options.http.log_sink = [&](const std::string& line) {
    const std::lock_guard<std::mutex> lock(log_mutex);
    lines.push_back(line);
  };
  GatewayHarness harness(options);
  HttpClient client(harness.http_port());
  client.send_request("POST", "/v1/sample",
                      R"({"circuit":"M 0\n","shots":4,"seed":1})");
  EXPECT_EQ(client.read_response().status, 200);
  client.send_request("GET", "/nope");
  EXPECT_EQ(client.read_response().status, 404);

  // Streamed responses log from worker threads after the response bytes
  // are handed off, so the sample's line may land after the client has
  // read both replies (and after the 404's line). Wait for both, and
  // match by target instead of order.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (;;) {
    {
      const std::lock_guard<std::mutex> lock(log_mutex);
      if (lines.size() >= 2) break;
    }
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "log sink never saw both request lines";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const std::lock_guard<std::mutex> lock(log_mutex);
  ASSERT_EQ(lines.size(), 2u);
  bool saw_sample = false;
  bool saw_miss = false;
  for (const std::string& line : lines) {
    const JsonValue entry = parse_json(line);
    if (entry.find("target")->as_string() == "/v1/sample") {
      saw_sample = true;
      EXPECT_EQ(entry.find("method")->as_string(), "POST");
      EXPECT_EQ(entry.find("status")->as_u64(), 200u);
      EXPECT_GE(entry.find("ticket")->as_u64(), 1u);
      EXPECT_GE(entry.find("bytes")->as_u64(), 4u);
    } else {
      saw_miss = true;
      EXPECT_EQ(entry.find("target")->as_string(), "/nope");
      EXPECT_EQ(entry.find("status")->as_u64(), 404u);
    }
  }
  EXPECT_TRUE(saw_sample);
  EXPECT_TRUE(saw_miss);
}

TEST(HttpGateway, QueryStringsAndHttp10Handled) {
  GatewayHarness harness;
  HttpClient client(harness.http_port());
  // Query strings are stripped for routing.
  client.send_request("GET", "/healthz?verbose=1");
  EXPECT_EQ(client.read_response().status, 200);
  // HTTP/1.0 gets a response and a close.
  client.send("GET /healthz HTTP/1.0\r\n\r\n");
  const HttpResponse response = client.read_response();
  EXPECT_EQ(response.status, 200);
  EXPECT_TRUE(client.at_eof());
}

}  // namespace
}  // namespace symphase
