#include "sampler/sample_writer.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "core/symphase.hpp"

namespace symphase {
namespace {

BitMatrix tiny_samples() {
  // 3 measurements x 2 shots: shot0 = 101, shot1 = 011.
  BitMatrix m(3, 2);
  m.set(0, 0, true);
  m.set(2, 0, true);
  m.set(1, 1, true);
  m.set(2, 1, true);
  return m;
}

TEST(SampleWriter, FormatNames) {
  EXPECT_EQ(sample_format_from_name("01"), SampleFormat::k01);
  EXPECT_EQ(sample_format_from_name("hex"), SampleFormat::kHex);
  EXPECT_EQ(sample_format_from_name("b8"), SampleFormat::kB8);
  EXPECT_EQ(sample_format_from_name("ptb64"), SampleFormat::kPtb64);
  EXPECT_EQ(sample_format_from_name("dets"), SampleFormat::kDets);
  EXPECT_THROW(sample_format_from_name("csv"), std::invalid_argument);
}

TEST(SampleWriter, Format01) {
  EXPECT_EQ(samples_to_string(tiny_samples(), SampleFormat::k01),
            "101\n011\n");
}

TEST(SampleWriter, FormatHex) {
  // shot0 bits 101 -> nibble value 0b101 = 5; shot1 011 -> 0b110 = 6.
  EXPECT_EQ(samples_to_string(tiny_samples(), SampleFormat::kHex),
            "5\n6\n");
}

TEST(SampleWriter, FormatB8) {
  const std::string out =
      samples_to_string(tiny_samples(), SampleFormat::kB8);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(static_cast<unsigned char>(out[0]), 0b101u);
  EXPECT_EQ(static_cast<unsigned char>(out[1]), 0b110u);
}

TEST(SampleWriter, FormatDets) {
  EXPECT_EQ(samples_to_string(tiny_samples(), SampleFormat::kDets),
            "shot D0 D2\nshot D1 D2\n");
  // With 2 detectors, index 2 renders as logical observable 0.
  EXPECT_EQ(samples_to_string(tiny_samples(), SampleFormat::kDets, 2),
            "shot D0 L0\nshot D1 L0\n");
}

TEST(SampleWriter, FormatPtb64Layout) {
  // 2 shots of 3 bits: one 64-shot group of 3 little-endian words,
  // word k bit j = record bit k of shot j; shots beyond 1 zero-padded.
  const std::string out =
      samples_to_string(tiny_samples(), SampleFormat::kPtb64);
  ASSERT_EQ(out.size(), 3u * 8u);
  const auto word = [&](std::size_t k) {
    std::uint64_t w = 0;
    for (std::size_t b = 0; b < 8; ++b) {
      w |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(out[k * 8 + b]))
           << (8 * b);
    }
    return w;
  };
  EXPECT_EQ(word(0), 0b01u);  // bit 0: shot0=1, shot1=0
  EXPECT_EQ(word(1), 0b10u);  // bit 1: shot0=0, shot1=1
  EXPECT_EQ(word(2), 0b11u);  // bit 2: both set
}

TEST(SampleWriter, FormatPtb64RoundTripsModuloGroupPadding) {
  // ptb64 zero-pads the final partial 64-shot group, so the reader
  // returns shots rounded up to a multiple of 64 with zero columns
  // appended; everything else is exact, including shots % 64 != 0 and
  // shots % 8 != 0.
  Rng rng(123);
  for (const std::size_t bits : {1u, 3u, 64u, 65u, 200u}) {
    for (const std::size_t shots : {0u, 1u, 7u, 63u, 64u, 65u, 100u, 128u,
                                    777u}) {
      const BitMatrix original = BitMatrix::random(bits, shots, rng);
      std::stringstream stream;
      write_samples(original, SampleFormat::kPtb64, stream);
      const BitMatrix back = read_samples(stream, SampleFormat::kPtb64, bits);
      const std::size_t padded = ceil_div(shots, 64) * 64;
      ASSERT_EQ(back.rows(), bits);
      ASSERT_EQ(back.cols(), padded) << "bits=" << bits << " shots=" << shots;
      for (std::size_t k = 0; k < bits; ++k) {
        for (std::size_t j = 0; j < padded; ++j) {
          ASSERT_EQ(back.get(k, j), j < shots ? original.get(k, j) : false)
              << "bits=" << bits << " shots=" << shots << " k=" << k
              << " j=" << j;
        }
      }
    }
  }
}

TEST(SampleWriter, Ptb64MasksStaleBitsBeyondShotCap) {
  // The streaming path serializes fixed-width scratch blocks whose
  // columns beyond num_shots may hold stale data; the writer's shot cap
  // must mask them out of the final group.
  BitMatrix block(2, 128);
  for (std::size_t j = 0; j < 128; ++j) {
    block.set(0, j, true);  // stale junk everywhere
  }
  block.set(1, 9, true);
  const std::string out =
      samples_to_string(block, SampleFormat::kPtb64, SIZE_MAX, /*shots=*/10);
  ASSERT_EQ(out.size(), 2u * 8u);  // one group, not two
  std::uint64_t w0 = 0;
  std::uint64_t w1 = 0;
  for (std::size_t b = 0; b < 8; ++b) {
    w0 |= static_cast<std::uint64_t>(static_cast<unsigned char>(out[b]))
          << (8 * b);
    w1 |= static_cast<std::uint64_t>(static_cast<unsigned char>(out[8 + b]))
          << (8 * b);
  }
  EXPECT_EQ(w0, (1ull << 10) - 1);  // only the 10 valid shots survive
  EXPECT_EQ(w1, 1ull << 9);
}

TEST(SampleWriter, Ptb64ReadRejectsPartialGroup) {
  std::stringstream partial(std::string(8 * 2 - 1, '\x00'));
  EXPECT_THROW(read_samples(partial, SampleFormat::kPtb64, 2),
               std::invalid_argument);
}

class WriterRoundTrip : public ::testing::TestWithParam<SampleFormat> {};

TEST_P(WriterRoundTrip, RandomMatricesRoundTrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 17);
  for (const std::size_t bits : {1u, 3u, 8u, 9u, 64u, 65u, 200u}) {
    for (const std::size_t shots : {0u, 1u, 7u, 100u}) {
      const BitMatrix original = BitMatrix::random(bits, shots, rng);
      std::stringstream stream;
      write_samples(original, GetParam(), stream);
      const BitMatrix back = read_samples(stream, GetParam(), bits);
      ASSERT_EQ(back, original) << "bits=" << bits << " shots=" << shots;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Formats, WriterRoundTrip,
                         ::testing::Values(SampleFormat::k01,
                                           SampleFormat::kHex,
                                           SampleFormat::kB8));

TEST(SampleWriter, ReadRejectsMalformed) {
  std::stringstream bad01("10\n");
  EXPECT_THROW(read_samples(bad01, SampleFormat::k01, 3),
               std::invalid_argument);
  std::stringstream bad_char("10x\n");
  EXPECT_THROW(read_samples(bad_char, SampleFormat::k01, 3),
               std::invalid_argument);
  std::stringstream bad_hex("zz\n");
  EXPECT_THROW(read_samples(bad_hex, SampleFormat::kHex, 8),
               std::invalid_argument);
  std::stringstream partial_b8(std::string("\x01", 1));
  EXPECT_THROW(read_samples(partial_b8, SampleFormat::kB8, 9),
               std::invalid_argument);
  std::stringstream dets("shot D0\n");
  EXPECT_THROW(read_samples(dets, SampleFormat::kDets, 1),
               std::invalid_argument);
}

TEST(SampleWriter, EndToEndWithSampler) {
  const Circuit c = parse_circuit("X 0\nM 0 1\n");
  const BitMatrix samples = sample_circuit(c, 4, 1);
  EXPECT_EQ(samples_to_string(samples, SampleFormat::k01),
            "10\n10\n10\n10\n");
}

}  // namespace
}  // namespace symphase
