// Cross-validation of the stabilizer machinery against the dense
// state-vector oracle on small random circuits.

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/generators.hpp"
#include "statevector/state_vector.hpp"
#include "tableau/row_major_tableau.hpp"
#include "tableau/stabilizer_simulator.hpp"

namespace symphase {
namespace {

/// Runs `circuit` on both a tableau simulator and the oracle in lockstep:
/// the oracle is postselected along the tableau's measurement outcomes,
/// asserting that each outcome has the right oracle probability
/// (1.0 when the tableau says deterministic, 0.5 when random).
template <typename Layout>
void run_lockstep(const Circuit& circuit, std::uint64_t seed) {
  const std::size_t n = circuit.num_qubits();
  StabilizerSimulator<Layout> sim(n, seed);
  StateVector sv(n);

  const auto measure_both = [&](std::uint32_t q, bool reset_after) {
    const bool deterministic = sim.measurement_is_deterministic(q);
    const double p0 = sv.prob_zero(q);
    if (deterministic) {
      ASSERT_NEAR(p0, p0 > 0.5 ? 1.0 : 0.0, 1e-9)
          << "tableau deterministic but oracle undecided";
    } else {
      ASSERT_NEAR(p0, 0.5, 1e-9) << "tableau random but oracle decided";
    }
    const MeasureResult r = sim.measure(q);
    if (deterministic) {
      ASSERT_EQ(r.outcome, p0 < 0.5);
    }
    sv.postselect(q, r.outcome);
    if (reset_after && r.outcome) {
      sim.apply_unitary(GateType::X, q);
      sv.apply_gate(GateType::X, q);
    }
  };

  for (const Instruction& inst : circuit.instructions()) {
    switch (gate_info(inst.type).kind) {
      case GateKind::kUnitary1:
        for (const std::uint32_t q : inst.targets) {
          sim.apply_unitary(inst.type, q);
          sv.apply_gate(inst.type, q);
        }
        break;
      case GateKind::kUnitary2:
        for (std::size_t i = 0; i < inst.targets.size(); i += 2) {
          sim.apply_unitary(inst.type, inst.targets[i], inst.targets[i + 1]);
          sv.apply_gate(inst.type, inst.targets[i], inst.targets[i + 1]);
        }
        break;
      case GateKind::kMeasure:
        for (const std::uint32_t q : inst.targets) {
          measure_both(q, inst.type == GateType::MR);
        }
        break;
      case GateKind::kReset:
        for (const std::uint32_t q : inst.targets) {
          measure_both(q, true);
        }
        break;
      case GateKind::kNoise1:
      case GateKind::kNoise2:
      case GateKind::kAnnotation:
        break;  // noise-free lockstep
    }
  }

  // Every tableau generator must stabilize the oracle state, destabilizer
  // pairings must hold.
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(sv.is_stabilized_by(sim.stabilizer(i)))
        << "generator " << i << " = " << sim.stabilizer(i).to_string();
    for (std::size_t j = 0; j < n; ++j) {
      ASSERT_EQ(sim.destabilizer(i).commutes_with(sim.stabilizer(j)), i != j);
    }
  }
}

TEST(SimulatorOracle, StabilizersStabilizeTheStateVector) {
  Rng rng(101);
  for (int trial = 0; trial < 30; ++trial) {
    constexpr std::size_t kN = 6;
    Circuit c = random_fuzz_circuit(kN, 60, 0.0, rng, false);
    Circuit unitary_only(kN);
    for (const Instruction& inst : c.instructions()) {
      if (is_unitary(inst.type)) {
        unitary_only.append(inst.type, inst.targets);
      }
    }
    StabilizerSimulator<BlockedTableau> sim(kN, 1);
    sim.run_circuit(unitary_only);
    StateVector sv(kN);
    Rng sv_rng(1);
    std::vector<bool> record;
    sv.run_circuit(unitary_only, sv_rng, record);
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_TRUE(sv.is_stabilized_by(sim.stabilizer(i)))
          << "trial " << trial << " generator " << i << " = "
          << sim.stabilizer(i).to_string();
    }
  }
}

TEST(SimulatorOracle, LockstepFuzzBlockedLayout) {
  Rng rng(202);
  for (int trial = 0; trial < 30; ++trial) {
    const Circuit c = random_fuzz_circuit(5, 60, 0.0, rng, false);
    run_lockstep<BlockedTableau>(c, static_cast<std::uint64_t>(trial) + 1);
  }
}

TEST(SimulatorOracle, LockstepFuzzRowMajorLayout) {
  Rng rng(303);
  for (int trial = 0; trial < 30; ++trial) {
    const Circuit c = random_fuzz_circuit(6, 50, 0.0, rng, false);
    run_lockstep<RowMajorTableau>(c, static_cast<std::uint64_t>(trial) + 100);
  }
}

TEST(SimulatorOracle, LockstepDeepCircuit) {
  Rng rng(404);
  const Circuit c = random_fuzz_circuit(4, 400, 0.0, rng, false);
  run_lockstep<BlockedTableau>(c, 42);
}

}  // namespace
}  // namespace symphase
