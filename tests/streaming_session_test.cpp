// Streaming determinism contract of the task/session API
// (src/api/): for a fixed seed, SimulatorSession output through any
// sink, at any thread count, is bit-identical to the materialized
// samplers — per-format byte-identical for WriterSink, matrix-equal for
// BitMatrixSink, chunk-reassembly-equal for CallbackSink. Companion to
// tests/parallel_sample_test.cpp, which pins the same contract for the
// materialized entry points.

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "api/sample_stream.hpp"
#include "api/session.hpp"
#include "circuit/surface_code.hpp"
#include "core/symphase.hpp"
#include "sampler/sample_writer.hpp"
#include "sampler/symphase_sampler.hpp"

namespace symphase {
namespace {

// Spans multiple shards plus a ragged tail word, so ordered delivery,
// shard-local RNG streams, and tail masking are all exercised.
constexpr std::size_t kShots = 2 * kSampleShardBits + 777;

// Matches the session's internal frame-reference seed, so the
// materialized FrameSimulator baselines below sample the same process.
constexpr std::uint64_t kFrameSeed = 0;

Circuit noisy_surface_circuit() {
  SurfaceCodeOptions sc;
  sc.distance = 3;
  sc.rounds = 3;
  sc.data_depolarization = 0.01;
  sc.gate_depolarization = 0.002;
  sc.measurement_flip_probability = 0.01;
  return surface_code_memory(sc);
}

/// Joint detectors+observables matrix via the materialized per-backend
/// entry points (detector rows first) — the pre-streaming reference.
template <typename Sampler>
BitMatrix materialized_joint(const Sampler& sampler, std::size_t shots,
                             std::uint64_t seed) {
  const auto events = sampler.sample_detection_events(shots, seed);
  BitMatrix joint(events.detectors.rows() + events.observables.rows(), shots);
  for (std::size_t d = 0; d < events.detectors.rows(); ++d) {
    joint.xor_words_into_row(
        {events.detectors.row(d), events.detectors.words_per_row()}, d);
  }
  for (std::size_t k = 0; k < events.observables.rows(); ++k) {
    joint.xor_words_into_row(
        {events.observables.row(k), events.observables.words_per_row()},
        events.detectors.rows() + k);
  }
  return joint;
}

/// Stream-independent joint reference for the SymPhase backend:
/// CompiledSampler::sample_detection_events is itself a wrapper over the
/// streaming engine now, so rebuild its joint sampler from the public
/// expression lists and materialize through the classic full-B path.
BitMatrix direct_symphase_joint(const CompiledSampler& sampler,
                                std::size_t shots, std::uint64_t seed) {
  std::vector<MeasurementExpression> joint = sampler.detector_expressions();
  joint.insert(joint.end(), sampler.observable_expressions().begin(),
               sampler.observable_expressions().end());
  return SymPhaseSampler(sampler.symbols(), joint).sample(shots, seed);
}

std::string streamed_string(const SimulatorSession& session,
                            const SampleTask& task, SampleFormat format) {
  std::ostringstream oss;
  WriterSink sink(oss, format);
  session.run(task, sink);
  return oss.str();
}

TEST(StreamingSession, WriterSinkByteIdenticalEveryFormatSymPhase) {
  const Circuit circuit = noisy_surface_circuit();
  const SimulatorSession session(circuit);
  // Independent materialized reference: SymPhaseSampler::sample still
  // builds the full B matrix in one piece (no streaming engine).
  const SymPhaseSampler direct(session.compiled().symbols(),
                               session.compiled().expressions());
  const BitMatrix reference = direct.sample(kShots, 7);

  for (const SampleFormat format :
       {SampleFormat::k01, SampleFormat::kHex, SampleFormat::kB8}) {
    const std::string expected = samples_to_string(reference, format);
    for (const std::size_t threads : {1ul, 4ul}) {
      const SampleTask task =
          SampleTask::measurements(kShots).with_seed(7).with_threads(threads);
      EXPECT_EQ(streamed_string(session, task, format), expected)
          << "format " << static_cast<int>(format) << " threads " << threads;
    }
  }
}

TEST(StreamingSession, WriterSinkByteIdenticalEveryFormatFrames) {
  const Circuit circuit = noisy_surface_circuit();
  const SimulatorSession session(circuit);
  const FrameSimulator direct(circuit, kFrameSeed);
  const BitMatrix reference = direct.sample(kShots, 11);

  for (const SampleFormat format :
       {SampleFormat::k01, SampleFormat::kHex, SampleFormat::kB8}) {
    const std::string expected = samples_to_string(reference, format);
    for (const std::size_t threads : {1ul, 4ul}) {
      const SampleTask task = SampleTask::measurements(kShots)
                                  .with_seed(11)
                                  .with_threads(threads)
                                  .with_backend(SampleBackend::kFrameSimulator);
      EXPECT_EQ(streamed_string(session, task, format), expected)
          << "format " << static_cast<int>(format) << " threads " << threads;
    }
  }
}

TEST(StreamingSession, DetectionEventsByteIdenticalBothBackends) {
  const Circuit circuit = noisy_surface_circuit();
  const SimulatorSession session(circuit);
  const std::size_t dets = session.num_detectors();
  ASSERT_GT(dets, 0u);
  ASSERT_GT(session.num_observables(), 0u);

  const BitMatrix sym_joint = direct_symphase_joint(session.compiled(),
                                                    kShots, 13);
  const BitMatrix frame_joint =
      materialized_joint(FrameSimulator(circuit, kFrameSeed), kShots, 13);

  for (const SampleFormat format : {SampleFormat::kDets, SampleFormat::k01,
                                    SampleFormat::kB8}) {
    for (const std::size_t threads : {1ul, 4ul}) {
      SampleTask task =
          SampleTask::detection_events(kShots).with_seed(13).with_threads(
              threads);
      EXPECT_EQ(streamed_string(session, task, format),
                samples_to_string(sym_joint, format, dets))
          << "symphase, format " << static_cast<int>(format);
      task.with_backend(SampleBackend::kFrameSimulator);
      EXPECT_EQ(streamed_string(session, task, format),
                samples_to_string(frame_joint, format, dets))
          << "frames, format " << static_cast<int>(format);
    }
  }
}

TEST(StreamingSession, PackedFormatsByteIdenticalOnRaggedShotCounts) {
  // Regression for the packed-format flush path: shot counts that are
  // not a multiple of 8 (b8 records) nor 64 (ptb64 groups), below and
  // above one shard, must stream byte-identically to the materialized
  // writer — the tail padding may only ever be applied once, at the
  // true end of the run, not at shard flush boundaries.
  const Circuit circuit = noisy_surface_circuit();
  const SimulatorSession session(circuit);
  const SymPhaseSampler direct(session.compiled().symbols(),
                               session.compiled().expressions());
  for (const std::size_t shots :
       {1ul, 7ul, 63ul, 101ul, kSampleShardBits - 1, kSampleShardBits + 9,
        2 * kSampleShardBits + 777}) {
    const BitMatrix reference = direct.sample(shots, 41);
    for (const SampleFormat format :
         {SampleFormat::k01, SampleFormat::kHex, SampleFormat::kB8,
          SampleFormat::kPtb64}) {
      const std::string expected = samples_to_string(reference, format);
      for (const std::size_t threads : {1ul, 4ul}) {
        const SampleTask task = SampleTask::measurements(shots)
                                    .with_seed(41)
                                    .with_threads(threads);
        EXPECT_EQ(streamed_string(session, task, format), expected)
            << "shots " << shots << " format " << static_cast<int>(format)
            << " threads " << threads;
      }
    }
  }
}

TEST(StreamingSession, Ptb64RejectsMisalignedMidStreamFlush) {
  // The WriterSink contract behind the regression above: a non-final
  // chunk covering a non-multiple of 64 shots cannot be serialized as
  // ptb64 without corrupting the stream, so the sink must refuse it.
  std::ostringstream oss;
  WriterSink sink(oss, SampleFormat::kPtb64);
  SampleStreamInfo info;
  info.bits_per_shot = 2;
  info.num_shots = 100;
  sink.begin(info);
  const BitMatrix block(2, kSampleShardBits);
  SampleChunk chunk;
  chunk.bits = &block;
  chunk.shot_offset = 0;
  chunk.num_shots = 30;  // mid-stream, not 64-aligned, not the tail
  EXPECT_THROW(sink.consume(chunk), std::invalid_argument);

  // The same ragged count as the *final* chunk is fine (tail padding).
  WriterSink tail_sink(oss, SampleFormat::kPtb64);
  SampleStreamInfo tail_info;
  tail_info.bits_per_shot = 2;
  tail_info.num_shots = 30;
  tail_sink.begin(tail_info);
  EXPECT_NO_THROW(tail_sink.consume(chunk));
}

TEST(StreamingSession, BitMatrixSinkMatchesDirectSampler) {
  const Circuit circuit = noisy_surface_circuit();
  const SimulatorSession session(circuit);
  // Stream-independent reference (full-B materialized path), so this
  // also pins that the engine-backed CompiledSampler::sample stayed
  // bit-compatible with the pre-streaming output.
  const SymPhaseSampler direct(session.compiled().symbols(),
                               session.compiled().expressions());
  const BitMatrix expected = direct.sample(kShots, 17);
  for (const std::size_t threads : {1ul, 8ul}) {
    const BitMatrix streamed = session.run_to_matrix(
        SampleTask::measurements(kShots).with_seed(17).with_threads(threads));
    EXPECT_EQ(streamed, expected) << "threads " << threads;
    EXPECT_EQ(session.compiled().sample(kShots, 17, threads), expected);
  }
}

TEST(StreamingSession, DenseStrategyStreamsIdenticalBits) {
  // kDense and kSparse compute the same product M·B, and both must hold
  // under shard streaming.
  const Circuit circuit = noisy_surface_circuit();
  CompileOptions dense;
  dense.multiply = MultiplyStrategy::kDense;
  const SimulatorSession sparse_session(circuit);
  const SimulatorSession dense_session(circuit, dense);
  const SampleTask task =
      SampleTask::measurements(kShots).with_seed(19).with_threads(4);
  EXPECT_EQ(dense_session.run_to_matrix(task),
            sparse_session.run_to_matrix(task));
}

TEST(StreamingSession, CallbackSinkDeliversOrderedDisjointChunks) {
  const Circuit circuit = noisy_surface_circuit();
  const SimulatorSession session(circuit);

  SampleStreamInfo seen_info;
  BitMatrix reassembled;
  std::size_t next_shot = 0;
  std::size_t chunks = 0;
  CallbackSink sink(
      [&](const SampleChunk& chunk) {
        EXPECT_EQ(chunk.shot_offset, next_shot);
        EXPECT_GT(chunk.num_shots, 0u);
        for (std::size_t r = 0; r < reassembled.rows(); ++r) {
          for (std::size_t j = 0; j < chunk.num_shots; ++j) {
            reassembled.set(r, chunk.shot_offset + j, chunk.bits->get(r, j));
          }
        }
        next_shot += chunk.num_shots;
        ++chunks;
      },
      [&](const SampleStreamInfo& info) {
        seen_info = info;
        reassembled = BitMatrix(info.bits_per_shot, info.num_shots);
      });

  session.run(SampleTask::measurements(kShots).with_seed(23).with_threads(4),
              sink);
  EXPECT_EQ(seen_info.num_shots, kShots);
  EXPECT_EQ(seen_info.bits_per_shot, circuit.num_measurements());
  EXPECT_EQ(next_shot, kShots);
  EXPECT_EQ(chunks, num_sample_shards(kShots));
  EXPECT_EQ(reassembled, session.compiled().sample(kShots, 23));
}

TEST(StreamingSession, BitSelectionExtractsMatchingRows) {
  const Circuit circuit = noisy_surface_circuit();
  const SimulatorSession session(circuit);
  const BitMatrix full = session.compiled().sample(kShots, 29);
  const std::vector<std::size_t> rows = {0, 3, 7, full.rows() - 1};

  const BitMatrix subset = session.run_to_matrix(
      SampleTask::measurements(kShots).with_seed(29).with_bit_selection(rows));
  ASSERT_EQ(subset.rows(), rows.size());
  ASSERT_EQ(subset.cols(), kShots);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t w = 0; w < words_for_bits(kShots); ++w) {
      ASSERT_EQ(subset.row(i)[w], full.row(rows[i])[w])
          << "selected row " << rows[i] << " word " << w;
    }
  }
}

TEST(StreamingSession, BitSelectionSplitsDetectorPrefix) {
  // Selecting 2 detectors + the observable: the dets rendering must
  // relabel the observable as L0 after the two D rows.
  const Circuit circuit = noisy_surface_circuit();
  const SimulatorSession session(circuit);
  const std::size_t dets = session.num_detectors();
  const std::vector<std::size_t> rows = {1, dets - 1, dets};

  std::ostringstream oss;
  WriterSink sink(oss, SampleFormat::kDets);
  session.run(SampleTask::detection_events(kShots)
                  .with_seed(31)
                  .with_bit_selection(rows),
              sink);
  const BitMatrix joint = direct_symphase_joint(session.compiled(), kShots,
                                                31);
  BitMatrix expected_rows(rows.size(), kShots);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    expected_rows.xor_words_into_row(
        {joint.row(rows[i]), joint.words_per_row()}, i);
  }
  EXPECT_EQ(oss.str(),
            samples_to_string(expected_rows, SampleFormat::kDets, 2));
}

TEST(StreamingSession, RejectsOutOfRangeSelection) {
  const Circuit circuit = noisy_surface_circuit();
  const SimulatorSession session(circuit);
  BitMatrixSink sink;
  EXPECT_THROW(
      session.run(SampleTask::measurements(64).with_bit_selection(
                      {circuit.num_measurements()}),
                  sink),
      std::invalid_argument);
  EXPECT_THROW(
      session.run(SampleTask::measurements(64).with_bit_selection({3, 3}),
                  sink),
      std::invalid_argument);
}

TEST(StreamingSession, EdgeShotCounts) {
  const Circuit circuit = noisy_surface_circuit();
  const SimulatorSession session(circuit);

  // Zero shots: begin/end still fire, matrix is rows x 0.
  const BitMatrix empty =
      session.run_to_matrix(SampleTask::measurements(0).with_seed(1));
  EXPECT_EQ(empty.rows(), circuit.num_measurements());
  EXPECT_EQ(empty.cols(), 0u);

  // Sub-shard run: one chunk, identical to the materialized sampler.
  const BitMatrix small =
      session.run_to_matrix(SampleTask::measurements(100).with_seed(1));
  EXPECT_EQ(small, session.compiled().sample(100, 1));

  // Exact shard multiple: no ragged tail.
  const BitMatrix exact = session.run_to_matrix(
      SampleTask::measurements(kSampleShardBits).with_seed(1));
  EXPECT_EQ(exact, session.compiled().sample(kSampleShardBits, 1));
}

TEST(StreamingSession, FrameDetectionMatchesMaterializedEvents) {
  // The per-shard detector fold must reproduce the materialized
  // FrameSimulator::sample_detection_events split exactly.
  const Circuit circuit = noisy_surface_circuit();
  const SimulatorSession session(circuit);
  const FrameSimulator direct(circuit, kFrameSeed);
  const auto events = direct.sample_detection_events(kShots, 37);

  const BitMatrix joint = session.run_to_matrix(
      SampleTask::detection_events(kShots).with_seed(37).with_backend(
          SampleBackend::kFrameSimulator));
  ASSERT_EQ(joint.rows(), events.detectors.rows() + events.observables.rows());
  for (std::size_t d = 0; d < events.detectors.rows(); ++d) {
    for (std::size_t w = 0; w < words_for_bits(kShots); ++w) {
      ASSERT_EQ(joint.row(d)[w], events.detectors.row(d)[w]);
    }
  }
  for (std::size_t k = 0; k < events.observables.rows(); ++k) {
    for (std::size_t w = 0; w < words_for_bits(kShots); ++w) {
      ASSERT_EQ(joint.row(events.detectors.rows() + k)[w],
                events.observables.row(k)[w]);
    }
  }
}

}  // namespace
}  // namespace symphase
