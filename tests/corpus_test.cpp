// Round-trip and sampling smoke tests over the checked-in circuit corpus
// (data/*.stim). Paths are injected by CMake (SYMPHASE_DATA_DIR).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/symphase.hpp"

namespace symphase {
namespace {

const std::vector<std::string>& corpus_files() {
  static const std::vector<std::string> files = {
      "fig1.stim",          "teleport.stim",
      "repetition_d5_r3.stim", "steane_r2.stim",
      "surface_d3_r3.stim", "surface_d3_r3_noisy.stim"};
  return files;
}

std::string path_of(const std::string& name) {
  return std::string(SYMPHASE_DATA_DIR) + "/" + name;
}

class CorpusTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CorpusTest, ParsesAndRoundTrips) {
  const Circuit circuit = parse_circuit_file(path_of(GetParam()));
  EXPECT_GT(circuit.num_qubits(), 0u);
  EXPECT_GT(circuit.num_measurements(), 0u);
  EXPECT_EQ(parse_circuit(circuit.to_text()), circuit);
}

TEST_P(CorpusTest, CompilesAndSamples) {
  const Circuit circuit = parse_circuit_file(path_of(GetParam()));
  const CompiledSampler sampler = CompiledSampler::compile(circuit);
  const BitMatrix samples = sampler.sample(256, 7);
  EXPECT_EQ(samples.rows(), circuit.num_measurements());
  EXPECT_EQ(samples.cols(), 256u);
  // Exact marginals are well-defined for every measurement.
  for (std::size_t k = 0; k < sampler.num_measurements(); ++k) {
    const double p = sampler.outcome_probability(k);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST_P(CorpusTest, FrameSamplerHandlesIt) {
  const Circuit circuit = parse_circuit_file(path_of(GetParam()));
  FrameSimulator frame(circuit, 9);
  const BitMatrix samples = frame.sample(128, 10);
  EXPECT_EQ(samples.rows(), circuit.num_measurements());
}

INSTANTIATE_TEST_SUITE_P(
    Files, CorpusTest, ::testing::ValuesIn(corpus_files()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) {
          c = '_';
        }
      }
      return name;
    });

TEST(Corpus, MissingFileThrows) {
  EXPECT_THROW(parse_circuit_file(path_of("nonexistent.stim")),
               std::invalid_argument);
}

}  // namespace
}  // namespace symphase
