// Cross-request shot fusion (service worker + fused engine pass):
// members of a fused group must produce byte-identical output to solo
// runs (per-member seed/format/threads/selection respected), the fusion
// cap must split oversized groups, different fuse keys must never fuse,
// cancelling one member must leave its groupmates intact, and drain()
// must not return before a queue-cancelled request's error frame has
// been emitted (the PR 8 drain-race regression).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/session.hpp"
#include "circuit/parser.hpp"
#include "sampler/sample_writer.hpp"
#include "service/request.hpp"
#include "service/scheduler.hpp"
#include "service/service.hpp"
#include "service/wire.hpp"

namespace symphase {
namespace {

constexpr const char* kCircuitA = "H 0\nCNOT 0 1\nX_ERROR(0.1) 0 1\nM 0 1\n";
constexpr const char* kCircuitB = "X 0\nM 0 1 2\n";
constexpr const char* kDetCircuit =
    "X_ERROR(0.1) 0 1\n"
    "CNOT 0 1\n"
    "M 0 1\n"
    "DETECTOR rec[-1]\n"
    "DETECTOR rec[-2]\n"
    "OBSERVABLE_INCLUDE(0) rec[-2]\n";

std::string direct_output(const std::string& circuit_text,
                          const SampleTask& task, SampleFormat format) {
  const SimulatorSession session(parse_circuit(circuit_text));
  std::ostringstream oss;
  WriterSink sink(oss, format);
  session.run(task, sink);
  return oss.str();
}

/// Collects frames across requests; thread-safe.
class FrameCollector {
 public:
  FrameFn fn() {
    return [this](const FrameHeader& header, std::string_view payload) {
      const std::lock_guard<std::mutex> lock(mutex_);
      frames_.push_back(Frame{header, std::string(payload)});
    };
  }

  std::vector<Frame> frames() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return frames_;
  }

  MessageAssembler::Message message_for(std::uint64_t request_id) const {
    MessageAssembler assembler;
    std::optional<MessageAssembler::Message> result;
    for (const Frame& frame : frames()) {
      if (frame.header.request_id != request_id) {
        continue;
      }
      EXPECT_FALSE(result.has_value()) << "frames after last";
      if (auto message = assembler.accept(frame)) {
        result = std::move(message);
      }
      EXPECT_FALSE(assembler.failed()) << assembler.error();
    }
    EXPECT_TRUE(result.has_value())
        << "request " << request_id << " never completed";
    return result.value_or(MessageAssembler::Message{});
  }

 private:
  mutable std::mutex mutex_;
  std::vector<Frame> frames_;
};

class Latch {
 public:
  void release() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      released_ = true;
    }
    cv_.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return released_; });
  }
  void wait_for_waiter() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return waiting_; });
  }
  void mark_waiting() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      waiting_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool released_ = false;
  bool waiting_ = false;
};

/// Parks a 1-worker service inside a kCircuitB request until
/// latch.release(), so everything submitted afterwards queues up and
/// is eligible for fusion when the worker comes back.
std::uint64_t submit_blocker(SamplingService& service, Latch& latch,
                             FrameCollector& collector) {
  SampleRequest blocker = SampleRequest::sample(kCircuitB, 100);
  auto first = std::make_shared<std::atomic<bool>>(true);
  const FrameFn record = collector.fn();
  const std::uint64_t ticket = service.submit(
      1, blocker,
      [&latch, first, record](const FrameHeader& header,
                              std::string_view payload) {
        if (first->exchange(false)) {
          latch.mark_waiting();
          latch.wait();
        }
        record(header, payload);
      });
  latch.wait_for_waiter();
  return ticket;
}

// ---------------------------------------------------------------------------
// DeadlineQueue group claiming.

TEST(DeadlineQueue, ClaimGroupTakesMostUrgentFirstUpToCap) {
  DeadlineQueue<int> queue;
  using Item = DeadlineQueue<int>::Item;
  const auto now = SchedulerClock::now();
  // Five members of "g" with scrambled urgency, one bystander in "h".
  queue.push(Item{1, RequestPriority::kLow, kNoDeadline, 10, "g"});
  queue.push(Item{2, RequestPriority::kNormal, kNoDeadline, 20, "g"});
  queue.push(
      Item{3, RequestPriority::kNormal, now + std::chrono::milliseconds(100),
           30, "g"});
  queue.push(Item{4, RequestPriority::kHigh, kNoDeadline, 40, "g"});
  queue.push(Item{5, RequestPriority::kNormal, kNoDeadline, 50, "g"});
  queue.push(Item{6, RequestPriority::kHigh, kNoDeadline, 60, "h"});

  std::vector<Item> claimed;
  EXPECT_EQ(queue.claim_group("g", 3, claimed), 3u);
  ASSERT_EQ(claimed.size(), 3u);
  // Urgency order, not arrival order: high, then earliest deadline,
  // then FIFO among no-deadline normals.
  EXPECT_EQ(claimed[0].ticket, 4u);
  EXPECT_EQ(claimed[1].ticket, 3u);
  EXPECT_EQ(claimed[2].ticket, 2u);
  EXPECT_EQ(queue.size(), 3u);

  // The claimed tickets are really gone; the rest still pop correctly.
  EXPECT_FALSE(queue.remove(4));
  std::vector<std::uint64_t> order;
  while (!queue.empty()) {
    order.push_back(queue.pop().ticket);
  }
  EXPECT_EQ(order, (std::vector<std::uint64_t>{6, 5, 1}));

  // Unknown and empty tags claim nothing.
  EXPECT_EQ(queue.claim_group("g", 8, claimed), 0u);
  EXPECT_EQ(queue.claim_group("", 8, claimed), 0u);
}

TEST(DeadlineQueue, RemoveRootTailAndSoleElementKeepHeapConsistent) {
  using Item = DeadlineQueue<int>::Item;
  {
    // Removing the root (most urgent) must re-heapify, not just swap.
    DeadlineQueue<int> queue;
    queue.push(Item{1, RequestPriority::kHigh, kNoDeadline, 0});
    queue.push(Item{2, RequestPriority::kLow, kNoDeadline, 0});
    queue.push(Item{3, RequestPriority::kNormal, kNoDeadline, 0});
    queue.push(Item{4, RequestPriority::kHigh, kNoDeadline, 0});
    EXPECT_TRUE(queue.remove(1));
    std::vector<std::uint64_t> order;
    while (!queue.empty()) {
      order.push_back(queue.pop().ticket);
    }
    EXPECT_EQ(order, (std::vector<std::uint64_t>{4, 3, 2}));
  }
  {
    // Removing the physical tail slot must not sift a stale index.
    DeadlineQueue<int> queue;
    queue.push(Item{1, RequestPriority::kHigh, kNoDeadline, 0});
    queue.push(Item{2, RequestPriority::kNormal, kNoDeadline, 0});
    queue.push(Item{3, RequestPriority::kLow, kNoDeadline, 0});
    EXPECT_TRUE(queue.remove(3));
    EXPECT_EQ(queue.size(), 2u);
    EXPECT_EQ(queue.pop().ticket, 1u);
    EXPECT_EQ(queue.pop().ticket, 2u);
  }
  {
    // Removing the only element leaves a reusable empty queue.
    DeadlineQueue<int> queue;
    queue.push(Item{7, RequestPriority::kNormal, kNoDeadline, 0});
    EXPECT_TRUE(queue.remove(7));
    EXPECT_TRUE(queue.empty());
    queue.push(Item{8, RequestPriority::kNormal, kNoDeadline, 0});
    EXPECT_EQ(queue.pop().ticket, 8u);
  }
}

// ---------------------------------------------------------------------------
// Fused execution: bit-identical to solo, per member.

TEST(FusionService, FusedMembersAreBitIdenticalToSolo) {
  SamplingService service({.num_workers = 1});
  Latch latch;
  FrameCollector collector;
  submit_blocker(service, latch, collector);

  // Five same-circuit requests that differ in every per-member knob:
  // seed, shot count (including multi-shard and partial-shard tails),
  // format, thread count, and one row subset.
  struct Member {
    std::uint64_t id;
    std::size_t shots;
    std::uint64_t seed;
    SampleFormat format;
    std::size_t threads;
    std::vector<std::size_t> rows;
  };
  const std::vector<Member> members = {
      {2, 100, 11, SampleFormat::k01, 1, {}},
      {3, 16'483, 22, SampleFormat::kB8, 2, {}},  // 3 shards, ragged tail
      {4, 1, 33, SampleFormat::kHex, 1, {}},
      {5, 8'192, 44, SampleFormat::kPtb64, 2, {}},  // exactly one shard
      {6, 5'000, 55, SampleFormat::k01, 1, {0}},    // row subset
  };
  std::vector<SampleRequest> requests;
  for (const Member& m : members) {
    SampleRequest request = SampleRequest::sample(kCircuitA, m.shots);
    request.task.seed = m.seed;
    request.task.num_threads = m.threads;
    request.task.bit_selection = m.rows;
    request.format = m.format;
    requests.push_back(request);
    service.submit(m.id, requests.back(), collector.fn());
  }

  latch.release();
  service.drain();

  for (std::size_t i = 0; i < members.size(); ++i) {
    const std::string expected =
        direct_output(kCircuitA, requests[i].task, requests[i].format);
    EXPECT_EQ(collector.message_for(members[i].id).payload, expected)
        << "request " << members[i].id;
  }

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.fused_requests, 5u) << stats.to_line();
  EXPECT_EQ(stats.fusion_groups, 1u) << stats.to_line();
  EXPECT_EQ(stats.completed, 6u) << stats.to_line();
  // One compile per distinct circuit — fusion must preserve the
  // compile-once contract (blocker's kCircuitB + kCircuitA).
  EXPECT_EQ(stats.compiles, 2u) << stats.to_line();
  EXPECT_EQ(stats.misses, 2u) << stats.to_line();
  EXPECT_EQ(stats.hits, 4u) << stats.to_line();
}

TEST(FusionService, DetectAndFrameBackendGroupsFuseSeparately) {
  SamplingService service({.num_workers = 1});
  Latch latch;
  FrameCollector collector;
  submit_blocker(service, latch, collector);

  // Two distinct fuse keys queued together: detect on the reference
  // backend and sample on the frame backend. Each fuses internally;
  // they must never fuse with each other.
  std::vector<SampleRequest> requests;
  for (std::uint64_t id = 2; id <= 4; ++id) {
    SampleRequest request = SampleRequest::detect(kDetCircuit, 9'000);
    request.task.seed = id * 7;
    requests.push_back(request);
    service.submit(id, requests.back(), collector.fn());
  }
  for (std::uint64_t id = 5; id <= 7; ++id) {
    SampleRequest request = SampleRequest::sample(kDetCircuit, 12'000);
    request.task.seed = id * 7;
    request.task.backend = SampleBackend::kFrameSimulator;
    request.format = SampleFormat::kB8;
    requests.push_back(request);
    service.submit(id, requests.back(), collector.fn());
  }

  latch.release();
  service.drain();

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const std::uint64_t id = 2 + i;
    const std::string expected =
        direct_output(kDetCircuit, requests[i].task, requests[i].format);
    EXPECT_EQ(collector.message_for(id).payload, expected) << "request " << id;
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.fused_requests, 6u) << stats.to_line();
  EXPECT_EQ(stats.fusion_groups, 2u) << stats.to_line();
}

TEST(FusionService, CapSplitsGroupsAndDistinctKeysNeverFuse) {
  SamplingService service({.num_workers = 1, .fusion_cap = 4});
  Latch latch;
  FrameCollector collector;
  submit_blocker(service, latch, collector);

  // Six same-key requests against a cap of 4: one group of four, one
  // of two. A seventh request with different circuit text must stay
  // solo (no group of one is ever counted).
  std::vector<SampleRequest> requests;
  for (std::uint64_t id = 2; id <= 7; ++id) {
    SampleRequest request = SampleRequest::sample(kCircuitA, 2'000);
    request.task.seed = 100 + id;
    requests.push_back(request);
    service.submit(id, requests.back(), collector.fn());
  }
  SampleRequest lone = SampleRequest::sample(kCircuitB, 2'000);
  lone.task.seed = 999;
  service.submit(8, lone, collector.fn());

  latch.release();
  service.drain();

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const std::uint64_t id = 2 + i;
    const std::string expected =
        direct_output(kCircuitA, requests[i].task, requests[i].format);
    EXPECT_EQ(collector.message_for(id).payload, expected) << "request " << id;
  }
  EXPECT_EQ(collector.message_for(8).payload,
            direct_output(kCircuitB, lone.task, lone.format));

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.fused_requests, 6u) << stats.to_line();
  EXPECT_EQ(stats.fusion_groups, 2u) << stats.to_line();
  EXPECT_EQ(stats.completed, 8u) << stats.to_line();
}

TEST(FusionService, FusionCapOneDisablesFusion) {
  SamplingService service({.num_workers = 1, .fusion_cap = 1});
  Latch latch;
  FrameCollector collector;
  submit_blocker(service, latch, collector);

  std::vector<SampleRequest> requests;
  for (std::uint64_t id = 2; id <= 4; ++id) {
    SampleRequest request = SampleRequest::sample(kCircuitA, 1'000);
    request.task.seed = id;
    requests.push_back(request);
    service.submit(id, requests.back(), collector.fn());
  }
  latch.release();
  service.drain();

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const std::uint64_t id = 2 + i;
    EXPECT_EQ(collector.message_for(id).payload,
              direct_output(kCircuitA, requests[i].task, requests[i].format))
        << "request " << id;
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.fused_requests, 0u) << stats.to_line();
  EXPECT_EQ(stats.fusion_groups, 0u) << stats.to_line();
}

TEST(FusionService, CancelOneMemberLeavesGroupmatesBitIdentical) {
  // Small frames give the middle member plenty of chunk boundaries to
  // cancel itself at; its groupmates' streams must not notice.
  SamplingService service({.num_workers = 1, .max_frame_payload = 256});
  Latch latch;
  FrameCollector collector;
  submit_blocker(service, latch, collector);

  SampleRequest request = SampleRequest::sample(kCircuitA, 200'000);
  request.format = SampleFormat::kB8;

  SampleRequest first = request;
  first.task.seed = 1001;
  service.submit(2, first, collector.fn());

  SampleRequest doomed = request;
  doomed.task.seed = 1002;
  std::uint64_t doomed_ticket = 0;
  std::mutex ticket_mutex;
  std::atomic<bool> cancel_result{false};
  std::string doomed_error;
  std::mutex error_mutex;
  const FrameFn record = collector.fn();
  const FrameFn cancelling_emit = [&](const FrameHeader& header,
                                      std::string_view payload) {
    record(header, payload);
    if ((header.flags & kFrameError) != 0) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      doomed_error = std::string(payload);
      return;
    }
    std::uint64_t ticket = 0;
    {
      const std::lock_guard<std::mutex> lock(ticket_mutex);
      ticket = doomed_ticket;
    }
    if (ticket != 0 && service.cancel(ticket)) {
      cancel_result = true;
    }
  };
  {
    const std::lock_guard<std::mutex> lock(ticket_mutex);
    doomed_ticket = service.submit(3, doomed, cancelling_emit);
  }

  SampleRequest last = request;
  last.task.seed = 1003;
  service.submit(4, last, collector.fn());

  latch.release();
  service.drain();

  // Groupmates stream to completion, byte-identical to solo runs.
  EXPECT_EQ(collector.message_for(2).payload,
            direct_output(kCircuitA, first.task, first.format));
  EXPECT_EQ(collector.message_for(4).payload,
            direct_output(kCircuitA, last.task, last.format));
  EXPECT_TRUE(cancel_result.load());
  {
    const std::lock_guard<std::mutex> lock(error_mutex);
    EXPECT_NE(doomed_error.find("cancelled"), std::string::npos)
        << doomed_error;
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cancelled, 1u) << stats.to_line();
  EXPECT_EQ(stats.completed, 3u) << stats.to_line();  // blocker + 2 mates
  EXPECT_EQ(stats.fused_requests, 3u) << stats.to_line();
  EXPECT_EQ(stats.fusion_groups, 1u) << stats.to_line();
}

TEST(FusionService, MidRunDeadlineExpiryCutsOnlyThatMemberOfAFusedGroup) {
  // The watchdog twin of CancelOneMemberLeavesGroupmatesBitIdentical:
  // one member of a fused group carries a deadline that expires while
  // the group executes. Only that member may stop — with a mid-run
  // `deadline_expired` frame and the `expired_running` counter — while
  // its groupmates stream to completion byte-identical to solo runs.
  std::mutex log_mutex;
  std::vector<std::string> log_lines;
  ServiceOptions options;
  options.num_workers = 1;
  options.max_frame_payload = 256;
  options.watchdog_log = [&](std::string_view line) {
    const std::lock_guard<std::mutex> lock(log_mutex);
    log_lines.emplace_back(line);
  };
  // Wedge exactly the doomed member (matched by seed) on the worker
  // thread until the watchdog has provably cut it: the hook returns
  // only once the structured `deadline_expired` event was logged, so
  // the fused pass starts with the doomed member's flag already set.
  options.fault_hook = [&](std::uint64_t, const SampleRequest& request) {
    if (request.task.seed != 1002) {
      return;
    }
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    for (;;) {
      {
        const std::lock_guard<std::mutex> lock(log_mutex);
        bool cut = false;
        for (const std::string& line : log_lines) {
          if (line.find("\"event\":\"deadline_expired\"") !=
              std::string::npos) {
            cut = true;
          }
        }
        if (cut) {
          return;
        }
      }
      if (std::chrono::steady_clock::now() > give_up) {
        ADD_FAILURE() << "watchdog never cut the doomed member";
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  };
  SamplingService service(options);
  Latch latch;
  FrameCollector collector;
  submit_blocker(service, latch, collector);

  SampleRequest request = SampleRequest::sample(kCircuitA, 200'000);
  request.format = SampleFormat::kB8;

  SampleRequest first = request;
  first.task.seed = 1001;
  service.submit(2, first, collector.fn());

  SampleRequest doomed = request;
  doomed.task.seed = 1002;
  // Wide enough to always pass the pre-run admission gate (the claim
  // follows the latch release within milliseconds); the fault hook
  // then holds the member past it deterministically.
  doomed.deadline_ms = 1000;
  service.submit(3, doomed, collector.fn());

  SampleRequest last = request;
  last.task.seed = 1003;
  service.submit(4, last, collector.fn());

  latch.release();
  service.drain();

  // Groupmates stream to completion, byte-identical to solo runs.
  EXPECT_EQ(collector.message_for(2).payload,
            direct_output(kCircuitA, first.task, first.format));
  EXPECT_EQ(collector.message_for(4).payload,
            direct_output(kCircuitA, last.task, last.format));
  const MessageAssembler::Message cut = collector.message_for(3);
  ASSERT_TRUE(cut.error);
  EXPECT_NE(cut.error_text.find("deadline expired"), std::string::npos)
      << cut.error_text;
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.expired_running, 1u) << stats.to_line();
  EXPECT_EQ(stats.rejected_expired, 0u) << stats.to_line();
  EXPECT_EQ(stats.cancelled, 0u) << stats.to_line();
  EXPECT_EQ(stats.exec_timeouts, 0u) << stats.to_line();
  EXPECT_EQ(stats.completed, 3u) << stats.to_line();  // blocker + 2 mates
  EXPECT_EQ(stats.fused_requests, 3u) << stats.to_line();
  EXPECT_EQ(stats.fusion_groups, 1u) << stats.to_line();
}

// ---------------------------------------------------------------------------
// PR 8 regression: drain() must wait for a queue-cancelled request's
// error frame. Before the fix, cancel() notified the drain waiter while
// still holding the queue lock and emitted the frame after unlocking,
// so a concurrent drain() could observe "queue empty, nothing active"
// and return while the error frame was still being written.

TEST(FusionService, DrainWaitsForCancelledQueuedRequestErrorFrame) {
  SamplingService service({.num_workers = 1});
  Latch latch;
  FrameCollector collector;
  submit_blocker(service, latch, collector);

  std::atomic<bool> emitted{false};
  SampleRequest queued = SampleRequest::sample(kCircuitA, 100);
  const std::uint64_t ticket =
      service.submit(2, queued, [&](const FrameHeader&, std::string_view) {
        // A deliberately slow transport write: the frame is "on the
        // wire" only once this returns.
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
        emitted = true;
      });

  std::thread canceller([&] { EXPECT_TRUE(service.cancel(ticket)); });
  // Let the canceller get into the emit before the blocker finishes.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  latch.release();
  service.drain();
  // The whole point: at drain() return, every accepted request's final
  // frame has been fully emitted — including the cancelled one's.
  EXPECT_TRUE(emitted.load());
  canceller.join();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cancelled, 1u) << stats.to_line();
  EXPECT_EQ(stats.completed, 1u) << stats.to_line();
}

}  // namespace
}  // namespace symphase
