// Differential test: the service path (`symphase serve --stdio`, a real
// subprocess speaking the wire protocol) must be bit-identical to the
// direct SimulatorSession path for every corpus circuit, for sample and
// detect, across thread counts and both backends. This extends the
// shard/RNG determinism contract (docs/performance.md) across the
// process boundary: framing, chunking, queueing, and worker scheduling
// may not change a single output byte. The HTTP gateway is pinned to
// the same outputs below: JSON translation, chunked encoding, and the
// shared-event-loop plumbing may not change a byte either, so all three
// transports agree across the corpus.
//
// The binary path and data dir are injected by CMake (SYMPHASE_CLI_PATH,
// SYMPHASE_DATA_DIR).

#include <gtest/gtest.h>

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "api/session.hpp"
#include "circuit/parser.hpp"
#include "http_test_client.hpp"
#include "sampler/sample_writer.hpp"
#include "service/digest.hpp"
#include "service/request.hpp"
#include "service/wire.hpp"

namespace symphase {
namespace {

const std::vector<std::string>& corpus_files() {
  static const std::vector<std::string> files = {
      "fig1.stim",          "teleport.stim",
      "repetition_d5_r3.stim", "steane_r2.stim",
      "surface_d3_r3.stim", "surface_d3_r3_noisy.stim"};
  return files;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

/// Runs `symphase serve --stdio`, feeding `input` on stdin and
/// returning raw stdout. Uses a shell pipeline with temp files so the
/// child sees a closed stdin (EOF-driven shutdown).
std::string run_serve(const std::string& input, const std::string& extra_args,
                      int expected_exit = 0) {
  static int counter = 0;
  const std::string base =
      ::testing::TempDir() + "/serve_" + std::to_string(counter++);
  const std::string in_path = base + ".in";
  const std::string out_path = base + ".out";
  {
    std::ofstream out(in_path, std::ios::binary);
    out.write(input.data(), static_cast<std::streamsize>(input.size()));
  }
  const std::string command = std::string(SYMPHASE_CLI_PATH) +
                              " serve --stdio " + extra_args + " < " +
                              in_path + " > " + out_path + " 2>/dev/null";
  const int status = std::system(command.c_str());
  EXPECT_EQ(WEXITSTATUS(status), expected_exit) << command;
  return read_file(out_path);
}

/// Decodes a response byte stream into per-request messages.
std::map<std::uint64_t, MessageAssembler::Message> decode_responses(
    const std::string& bytes) {
  FrameDecoder decoder;
  MessageAssembler assembler;
  std::map<std::uint64_t, MessageAssembler::Message> messages;
  decoder.feed(bytes);
  Frame frame;
  while (decoder.next(frame)) {
    if (auto message = assembler.accept(frame)) {
      EXPECT_EQ(messages.count(message->request_id), 0u)
          << "request " << message->request_id << " answered twice";
      messages[message->request_id] = std::move(*message);
    }
  }
  EXPECT_TRUE(decoder.finish()) << decoder.error();
  EXPECT_FALSE(assembler.failed()) << assembler.error();
  EXPECT_EQ(assembler.open_messages(), 0u);
  return messages;
}

std::string one_frame_request(std::uint64_t request_id,
                              const std::string& payload) {
  FrameHeader header;
  header.request_id = request_id;
  header.flags = kFrameLast;
  return encode_frame(header, payload);
}

std::string direct_output(const Circuit& circuit, const SampleTask& task,
                          SampleFormat format) {
  const SimulatorSession session(circuit);
  std::ostringstream oss;
  WriterSink sink(oss, format);
  session.run(task, sink);
  return oss.str();
}

struct Combo {
  SampleTarget target;
  SampleBackend backend;
  std::size_t threads;
  SampleFormat format;
};

/// The matrix: both targets x both backends x 1/2/8 threads, with the
/// format rotating through all applicable writers so each one crosses
/// the wire at least once per circuit.
std::vector<Combo> combos(bool has_detectors) {
  const std::vector<SampleFormat> sample_formats = {
      SampleFormat::k01, SampleFormat::kB8, SampleFormat::kHex,
      SampleFormat::kPtb64};
  const std::vector<SampleFormat> detect_formats = {
      SampleFormat::kDets, SampleFormat::k01, SampleFormat::kB8,
      SampleFormat::kPtb64};
  std::vector<Combo> result;
  std::size_t rotation = 0;
  for (const SampleBackend backend :
       {SampleBackend::kSymPhase, SampleBackend::kFrameSimulator}) {
    for (const std::size_t threads : {1ul, 2ul, 8ul}) {
      result.push_back({SampleTarget::kMeasurements, backend, threads,
                        sample_formats[rotation % sample_formats.size()]});
      if (has_detectors) {
        result.push_back({SampleTarget::kDetectionEvents, backend, threads,
                          detect_formats[rotation % detect_formats.size()]});
      }
      ++rotation;
    }
  }
  return result;
}

class ServiceDifferentialTest : public ::testing::TestWithParam<std::string> {
};

TEST_P(ServiceDifferentialTest, ServeStdioBitIdenticalToDirectSession) {
  const std::string path = std::string(SYMPHASE_DATA_DIR) + "/" + GetParam();
  const std::string circuit_text = read_file(path);
  const Circuit circuit = parse_circuit(circuit_text);
  const bool has_detectors =
      circuit.num_detectors() + circuit.num_observables() > 0;

  // Shots span multiple shards with a ragged tail (and are odd, so the
  // packed formats' padding paths cross the wire too).
  const std::size_t shots = 2 * 8192 + 99;

  std::string input;
  std::map<std::uint64_t, std::string> expected;
  std::uint64_t id = 1;
  for (const Combo& combo : combos(has_detectors)) {
    SampleRequest request;
    request.verb = combo.target == SampleTarget::kMeasurements
                       ? RequestVerb::kSample
                       : RequestVerb::kDetect;
    request.circuit_text = circuit_text;
    request.task.target = combo.target;
    request.task.backend = combo.backend;
    request.task.shots = shots;
    request.task.seed = 1234 + id;
    request.task.num_threads = combo.threads;
    request.format = combo.format;
    input += one_frame_request(id, encode_request_payload(request));
    expected[id] = direct_output(circuit, request.task, combo.format);
    ++id;
  }

  // Several workers so responses interleave across requests; the
  // decoder demultiplexes by request_id.
  const std::string output = run_serve(input, "--workers 3");
  const auto messages = decode_responses(output);
  ASSERT_EQ(messages.size(), expected.size());
  for (const auto& [request_id, expected_bytes] : expected) {
    const auto it = messages.find(request_id);
    ASSERT_NE(it, messages.end()) << "request " << request_id;
    EXPECT_FALSE(it->second.error)
        << "request " << request_id << ": " << it->second.error_text;
    EXPECT_EQ(it->second.payload, expected_bytes)
        << GetParam() << " request " << request_id;
  }
}

const char* format_name(SampleFormat format) {
  switch (format) {
    case SampleFormat::k01:
      return "01";
    case SampleFormat::kHex:
      return "hex";
    case SampleFormat::kB8:
      return "b8";
    case SampleFormat::kPtb64:
      return "ptb64";
    case SampleFormat::kDets:
      return "dets";
  }
  return "01";
}

TEST_P(ServiceDifferentialTest, HttpGatewayBitIdenticalToFrameAndDirect) {
  const std::string path = std::string(SYMPHASE_DATA_DIR) + "/" + GetParam();
  const std::string circuit_text = read_file(path);
  const Circuit circuit = parse_circuit(circuit_text);
  const bool has_detectors =
      circuit.num_detectors() + circuit.num_observables() > 0;

  // Smaller than the stdio matrix (HTTP requests are serial on one
  // keep-alive connection) but still multi-shard with a ragged tail.
  const std::size_t shots = 8192 + 51;
  struct HttpCombo {
    RequestVerb verb;
    SampleBackend backend;
    std::size_t threads;
    SampleFormat format;
  };
  std::vector<HttpCombo> matrix;
  std::size_t rotation = 0;
  for (const SampleBackend backend :
       {SampleBackend::kSymPhase, SampleBackend::kFrameSimulator}) {
    for (const std::size_t threads : {1ul, 8ul}) {
      const std::vector<SampleFormat> sample_formats = {
          SampleFormat::k01, SampleFormat::kB8, SampleFormat::kHex,
          SampleFormat::kPtb64};
      matrix.push_back({RequestVerb::kSample, backend, threads,
                        sample_formats[rotation % sample_formats.size()]});
      if (has_detectors) {
        const std::vector<SampleFormat> detect_formats = {
            SampleFormat::kDets, SampleFormat::k01, SampleFormat::kB8,
            SampleFormat::kPtb64};
        matrix.push_back({RequestVerb::kDetect, backend, threads,
                          detect_formats[rotation % detect_formats.size()]});
      }
      ++rotation;
    }
  }

  // Build the identical request set for the frame protocol subprocess
  // and the expected bytes from direct sessions.
  std::string frame_input;
  std::vector<std::string> expected;
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    const HttpCombo& combo = matrix[i];
    SampleRequest request;
    request.verb = combo.verb;
    request.circuit_text = circuit_text;
    request.task.target = combo.verb == RequestVerb::kSample
                              ? SampleTarget::kMeasurements
                              : SampleTarget::kDetectionEvents;
    request.task.backend = combo.backend;
    request.task.shots = shots;
    request.task.seed = 777 + i;
    request.task.num_threads = combo.threads;
    request.format = combo.format;
    frame_input +=
        one_frame_request(i + 1, encode_request_payload(request));
    expected.push_back(direct_output(circuit, request.task, combo.format));
  }
  const auto frame_messages =
      decode_responses(run_serve(frame_input, "--workers 3"));
  ASSERT_EQ(frame_messages.size(), matrix.size());

  // The HTTP side: same requests as JSON bodies against an in-process
  // gateway, responses streamed back chunked.
  http_testing::GatewayHarness harness;
  http_testing::HttpClient client(harness.http_port());
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    const HttpCombo& combo = matrix[i];
    std::ostringstream body;
    body << "{\"circuit\":\"" << http_testing::json_escape(circuit_text)
         << "\",\"shots\":" << shots << ",\"seed\":" << 777 + i
         << ",\"threads\":" << combo.threads << ",\"format\":\""
         << format_name(combo.format) << "\",\"backend\":\""
         << (combo.backend == SampleBackend::kSymPhase ? "symphase"
                                                       : "frames")
         << "\"}";
    client.send_request(
        "POST",
        combo.verb == RequestVerb::kSample ? "/v1/sample" : "/v1/detect",
        body.str());
    const http_testing::HttpResponse response = client.read_response();
    ASSERT_EQ(response.status, 200) << GetParam() << " combo " << i << ": "
                                    << response.body;
    EXPECT_TRUE(response.chunked_complete) << GetParam() << " combo " << i;
    EXPECT_NE(response.header("symphase-ticket"), nullptr);

    const auto frame_it = frame_messages.find(i + 1);
    ASSERT_NE(frame_it, frame_messages.end());
    EXPECT_FALSE(frame_it->second.error) << frame_it->second.error_text;
    // Three-way pin: HTTP == direct == frame protocol, byte for byte.
    EXPECT_EQ(response.body, expected[i])
        << GetParam() << " combo " << i << " (http vs direct)";
    EXPECT_EQ(frame_it->second.payload, expected[i])
        << GetParam() << " combo " << i << " (frame vs direct)";
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, ServiceDifferentialTest,
                         ::testing::ValuesIn(corpus_files()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '.' || c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(ServiceStdio, RegisterThenSampleByDigestCompilesOnce) {
  // The stats verb drains first, so its reply reflects the whole
  // session: two same-circuit requests (one inline, one by digest) plus
  // the register itself must show exactly one compile.
  const std::string circuit_text = "H 0\nCNOT 0 1\nX_ERROR(0.05) 0 1\nM 0 1\n";
  const Circuit circuit = parse_circuit(circuit_text);

  SampleRequest register_request;
  register_request.verb = RequestVerb::kRegister;
  register_request.circuit_text = circuit_text;

  std::string input =
      one_frame_request(1, encode_request_payload(register_request));

  // Inline-text request (same circuit, extra comments/whitespace).
  SampleRequest inline_request;
  inline_request.verb = RequestVerb::kSample;
  inline_request.circuit_text =
      "# same circuit\n  H 0\nCNOT 0 1\n\nX_ERROR(0.05) 0 1\nM 0 1\n";
  inline_request.task.shots = 5000;
  inline_request.task.seed = 42;
  input += one_frame_request(2, encode_request_payload(inline_request));

  // Digest-handle request. We know the digest deterministically.
  SampleRequest digest_request;
  digest_request.verb = RequestVerb::kSample;
  digest_request.digest = circuit_digest(circuit);
  digest_request.task.shots = 5000;
  digest_request.task.seed = 43;
  input += one_frame_request(3, encode_request_payload(digest_request));

  SampleRequest stats_request;
  stats_request.verb = RequestVerb::kStats;
  input += one_frame_request(4, encode_request_payload(stats_request));

  const auto messages = decode_responses(run_serve(input, "--workers 2"));
  ASSERT_EQ(messages.size(), 4u);
  EXPECT_EQ(messages.at(1).payload,
            "digest=" + circuit_digest(circuit) + "\n");
  EXPECT_EQ(messages.at(2).payload,
            direct_output(circuit, SampleTask::measurements(5000).with_seed(42),
                          SampleFormat::k01));
  EXPECT_EQ(messages.at(3).payload,
            direct_output(circuit, SampleTask::measurements(5000).with_seed(43),
                          SampleFormat::k01));
  const std::string stats = messages.at(4).payload;
  EXPECT_NE(stats.find("compiles=1 "), std::string::npos) << stats;
  EXPECT_NE(stats.find("hits=1 "), std::string::npos) << stats;
  EXPECT_NE(stats.find("misses=1 "), std::string::npos) << stats;
  EXPECT_NE(stats.find("completed=2 "), std::string::npos) << stats;
}

TEST(ServiceStdio, MalformedFramingExitsWithProtocolError) {
  // A frame header claiming a huge payload: the server must answer with
  // an error frame for request 0 and exit 1 — not hang or crash.
  FrameHeader header;
  header.request_id = 1;
  header.payload_bytes = 0x7fffffff;
  header.flags = kFrameLast;
  char head[kFrameHeaderBytes];
  encode_frame_header(header, head);
  const std::string output =
      run_serve(std::string(head, kFrameHeaderBytes), "", 1);
  const auto frames = [&] {
    FrameDecoder decoder;
    decoder.feed(output);
    std::vector<Frame> result;
    Frame frame;
    while (decoder.next(frame)) {
      result.push_back(frame);
    }
    return result;
  }();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].header.request_id, 0u);
  EXPECT_EQ(frames[0].header.flags, kFrameLast | kFrameError);
  EXPECT_NE(frames[0].payload.find("protocol error"), std::string::npos);
}

TEST(ServiceStdio, RespondsWhileStdinStaysOpen) {
  // Interactive clients keep stdin open between requests: the server
  // must answer as soon as a request's bytes arrive, not once some read
  // buffer fills or stdin closes. (Regression for the initial
  // istream::read(64 KiB) loop, which blocked until EOF.)
  int to_child[2];
  int from_child[2];
  ASSERT_EQ(pipe(to_child), 0);
  ASSERT_EQ(pipe(from_child), 0);
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    dup2(to_child[0], STDIN_FILENO);
    dup2(from_child[1], STDOUT_FILENO);
    close(to_child[0]);
    close(to_child[1]);
    close(from_child[0]);
    close(from_child[1]);
    execl(SYMPHASE_CLI_PATH, "symphase", "serve", "--stdio",
          static_cast<char*>(nullptr));
    _exit(127);
  }
  close(to_child[0]);
  close(from_child[1]);

  const std::string request =
      one_frame_request(1, encode_request_payload(
                               SampleRequest::sample("X 0\nM 0\n", 3)));
  ASSERT_EQ(write(to_child[1], request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  // stdin deliberately stays open while we wait for the response.
  FrameDecoder decoder;
  MessageAssembler assembler;
  std::optional<MessageAssembler::Message> message;
  char buffer[4096];
  while (!message) {
    pollfd waiting{from_child[0], POLLIN, 0};
    const int ready = poll(&waiting, 1, /*timeout_ms=*/10000);
    ASSERT_GT(ready, 0) << "no response within 10s with stdin still open";
    const ssize_t n = read(from_child[0], buffer, sizeof buffer);
    ASSERT_GT(n, 0);
    decoder.feed({buffer, static_cast<std::size_t>(n)});
    Frame frame;
    while (decoder.next(frame)) {
      if (auto completed = assembler.accept(frame)) {
        message = std::move(completed);
      }
    }
  }
  EXPECT_FALSE(message->error) << message->error_text;
  EXPECT_EQ(message->payload, "1\n1\n1\n");

  close(to_child[1]);  // EOF: clean shutdown
  close(from_child[0]);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(ServiceStdio, ConcurrentRequestIdReuseIsProtocolError) {
  // Reusing a request_id while its response is still streaming would
  // interleave two chunk sequences under one id; the server must end
  // the session as a protocol error instead. The first request is big
  // enough (and the worker pool small enough) that it is reliably still
  // in flight when the reuse arrives in the same read burst.
  SampleRequest big = SampleRequest::sample("X 0\nM 0 1\n", 20'000'000);
  big.format = SampleFormat::kB8;
  const std::string payload = encode_request_payload(big);
  const std::string input =
      one_frame_request(9, payload) + one_frame_request(9, payload);
  const std::string output = run_serve(input, "--workers 1", 1);
  const auto messages = decode_responses(output);
  // The first request still completes (drain before exit), then the
  // session-level error frame arrives on request 0.
  ASSERT_EQ(messages.size(), 2u);
  EXPECT_FALSE(messages.at(9).error);
  EXPECT_EQ(messages.at(9).payload.size(), 20'000'000u);  // 1 b8 byte/shot
  EXPECT_TRUE(messages.at(0).error);
  EXPECT_NE(messages.at(0).error_text.find("reused while still in flight"),
            std::string::npos);
}

TEST(ServiceStdio, RequestIdZeroIsReserved) {
  // 0 is the session-level error id; a client request using it gets an
  // error frame (on id 0, where no data stream can exist) and the
  // session keeps serving.
  std::string input = one_frame_request(
      0, encode_request_payload(SampleRequest::sample("X 0\nM 0\n", 3)));
  input += one_frame_request(
      1, encode_request_payload(SampleRequest::sample("X 0\nM 0\n", 3)));
  const auto messages = decode_responses(run_serve(input, ""));
  ASSERT_EQ(messages.size(), 2u);
  EXPECT_TRUE(messages.at(0).error);
  EXPECT_NE(messages.at(0).error_text.find("reserved"), std::string::npos);
  EXPECT_EQ(messages.at(1).payload, "1\n1\n1\n");
}

TEST(ServiceStdio, PerRequestErrorsDontKillTheSession) {
  // Request 1 is malformed (unknown verb), request 2 is valid: the
  // session answers both — an error frame, then real data — and exits 0.
  std::string input = one_frame_request(1, "frobnicate\n");
  SampleRequest good = SampleRequest::sample("X 0\nM 0\n", 3);
  input += one_frame_request(2, encode_request_payload(good));
  const auto messages = decode_responses(run_serve(input, ""));
  ASSERT_EQ(messages.size(), 2u);
  EXPECT_TRUE(messages.at(1).error);
  EXPECT_NE(messages.at(1).error_text.find("unknown request verb"),
            std::string::npos);
  EXPECT_FALSE(messages.at(2).error);
  EXPECT_EQ(messages.at(2).payload, "1\n1\n1\n");
}

}  // namespace
}  // namespace symphase
