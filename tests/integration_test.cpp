// End-to-end tests through the public API (core/symphase.hpp).

#include "core/symphase.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sampler/resample.hpp"

namespace symphase {
namespace {

double row_mean(const BitMatrix& m, std::size_t row, std::size_t cols) {
  std::size_t ones = 0;
  for (std::size_t w = 0; w < words_for_bits(cols); ++w) {
    ones += static_cast<std::size_t>(popcount(m.row(row)[w]));
  }
  return static_cast<double>(ones) / static_cast<double>(cols);
}

TEST(CompiledSampler, QuickstartFlow) {
  const Circuit circuit = parse_circuit(
      "H 0\n"
      "CNOT 0 1\n"
      "X_ERROR(0.1) 1\n"
      "M 0 1\n");
  const CompiledSampler sampler = CompiledSampler::compile(circuit);
  EXPECT_EQ(sampler.num_measurements(), 2u);
  EXPECT_EQ(sampler.num_symbols(), 3u);  // constant, X fault, coin
  const BitMatrix samples = sampler.sample(10000, 42);
  EXPECT_EQ(samples.rows(), 2u);
  EXPECT_EQ(samples.cols(), 10000u);
  EXPECT_NEAR(row_mean(samples, 0, 10000), 0.5, 0.03);
  EXPECT_NEAR(row_mean(samples, 1, 10000), 0.5, 0.03);
  // Disagreement rate = X error rate.
  std::size_t disagree = 0;
  for (std::size_t j = 0; j < 10000; ++j) {
    disagree += samples.get(0, j) != samples.get(1, j);
  }
  EXPECT_NEAR(disagree / 10000.0, 0.1, 0.02);
}

TEST(CompiledSampler, AllLayoutsProduceSameExpressions) {
  Rng rng(1);
  const Circuit c = random_fuzz_circuit(12, 300, 0.05, rng);
  CompileOptions blocked;
  CompileOptions row_major;
  row_major.layout = CompileOptions::Layout::kRowMajor;
  CompileOptions col_major;
  col_major.layout = CompileOptions::Layout::kColMajor;
  const CompiledSampler a = CompiledSampler::compile(c, blocked);
  const CompiledSampler b = CompiledSampler::compile(c, row_major);
  const CompiledSampler d = CompiledSampler::compile(c, col_major);
  EXPECT_EQ(a.expressions(), b.expressions());
  EXPECT_EQ(a.expressions(), d.expressions());
  // Same seeds, same layout-independent samples.
  EXPECT_EQ(a.sample(999, 7), b.sample(999, 7));
  EXPECT_EQ(a.sample(999, 7), d.sample(999, 7));
}

TEST(CompiledSampler, SampleDeterministicInSeedOnly) {
  const Circuit c = figure1_circuit(0.2);
  const CompiledSampler sampler = CompiledSampler::compile(c);
  EXPECT_EQ(sampler.sample(1000, 5), sampler.sample(1000, 5));
  // Different seed gives a different (very likely) matrix.
  EXPECT_NE(sampler.sample(1000, 5), sampler.sample(1000, 6));
}

TEST(CompiledSampler, Figure1Probabilities) {
  constexpr double kP = 0.2;
  const Circuit c = figure1_circuit(kP);
  const CompiledSampler sampler = CompiledSampler::compile(c);
  ASSERT_EQ(sampler.num_measurements(), 4u);
  // m1 = s1, m2 = s2: marginal p. m3 = s2^s3, m4 = s3^s4: XOR of two.
  const double xor2 = 2 * kP * (1 - kP);
  EXPECT_NEAR(sampler.outcome_probability(0), kP, 1e-12);
  EXPECT_NEAR(sampler.outcome_probability(1), kP, 1e-12);
  EXPECT_NEAR(sampler.outcome_probability(2), xor2, 1e-12);
  EXPECT_NEAR(sampler.outcome_probability(3), xor2, 1e-12);
  // Empirical agreement.
  constexpr std::size_t kShots = 100000;
  const BitMatrix samples = sampler.sample(kShots, 11);
  for (std::size_t k = 0; k < 4; ++k) {
    const double p = sampler.outcome_probability(k);
    EXPECT_NEAR(row_mean(samples, k, kShots), p,
                5 * std::sqrt(p * (1 - p) / kShots));
  }
}

TEST(CompiledSampler, ExpressionRendering) {
  const Circuit c = figure1_circuit(0.1);
  const CompiledSampler sampler = CompiledSampler::compile(c);
  EXPECT_EQ(expression_to_string(sampler.expressions()[0]), "s1");
  EXPECT_EQ(expression_to_string(sampler.expressions()[2]), "s2 ^ s3");
  MeasurementExpression zero;
  EXPECT_EQ(expression_to_string(zero), "0");
  MeasurementExpression one;
  one.symbols = {0};
  EXPECT_EQ(expression_to_string(one), "1");
}

TEST(SampleCircuitConvenience, MatchesCompiledSampler) {
  const Circuit c = ghz_circuit(4);
  const BitMatrix via_helper = sample_circuit(c, 256, 3);
  const BitMatrix via_sampler = CompiledSampler::compile(c).sample(256, 3);
  EXPECT_EQ(via_helper, via_sampler);
}

TEST(SampleCircuitConvenience, GhzAllEqual) {
  const Circuit c = ghz_circuit(6);
  const BitMatrix samples = sample_circuit(c, 2048, 9);
  // All 6 rows identical per shot (GHZ correlations), and the first row
  // is ~50/50.
  for (std::size_t r = 1; r < 6; ++r) {
    for (std::size_t w = 0; w < words_for_bits(2048); ++w) {
      ASSERT_EQ(samples.row(r)[w], samples.row(0)[w]) << r;
    }
  }
  EXPECT_NEAR(row_mean(samples, 0, 2048), 0.5, 0.06);
}

TEST(ResimulationBaseline, AgreesOnDeterministicCircuit) {
  const Circuit c = parse_circuit("X 0\nM 0 1\nH 1\nH 1\nM 1");
  const BitMatrix re = sample_by_resimulation(c, 100, 1);
  const CompiledSampler sym = CompiledSampler::compile(c);
  const BitMatrix sp = sym.sample(100, 2);
  EXPECT_EQ(re, sp);  // all outcomes deterministic -> exact equality
}

TEST(RepetitionCode, LogicalErrorRateDropsWithDistance) {
  // Code-capacity noise: logical error (majority vote of data bits wrong)
  // must shrink as distance grows at fixed p below threshold.
  constexpr double kP = 0.08;
  constexpr std::size_t kShots = 20000;
  double previous_rate = 1.0;
  for (const std::size_t d : {3u, 5u, 7u}) {
    RepetitionCodeOptions opt;
    opt.distance = d;
    opt.rounds = 1;
    opt.data_error_probability = kP;
    const Circuit c = repetition_code_memory(opt);
    const CompiledSampler sampler = CompiledSampler::compile(c);
    const BitMatrix samples = sampler.sample(kShots, d);
    // Data measurements are the last `d` rows.
    const std::size_t first_data = sampler.num_measurements() - d;
    std::size_t logical_errors = 0;
    for (std::size_t j = 0; j < kShots; ++j) {
      std::size_t ones = 0;
      for (std::size_t k = 0; k < d; ++k) {
        ones += samples.get(first_data + k, j);
      }
      logical_errors += 2 * ones > d;
    }
    const double rate = static_cast<double>(logical_errors) / kShots;
    EXPECT_LT(rate, previous_rate * 0.9)
        << "distance " << d << " rate " << rate;
    previous_rate = rate;
  }
}

TEST(RepetitionCode, SyndromesDetectInjectedError) {
  // A deterministic X on the middle data qubit must fire exactly the two
  // adjacent syndrome bits, every shot.
  RepetitionCodeOptions opt;
  opt.distance = 5;
  opt.rounds = 1;
  Circuit c(9);
  c.append1(GateType::X, 2);
  c.append_circuit(repetition_code_memory(opt));
  const CompiledSampler sampler = CompiledSampler::compile(c);
  const BitMatrix samples = sampler.sample(64, 1);
  // Syndrome bits: ancilla i measures Z_i Z_{i+1}; X on data 2 fires
  // ancillas 1 and 2.
  const bool expected[4] = {false, true, true, false};
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_DOUBLE_EQ(row_mean(samples, k, 64), expected[k] ? 1.0 : 0.0) << k;
  }
}

TEST(CompiledSampler, EmptyAndMeasurementFreeCircuits) {
  const Circuit empty(2);
  const CompiledSampler s1 = CompiledSampler::compile(empty);
  EXPECT_EQ(s1.num_measurements(), 0u);
  const BitMatrix out = s1.sample(100, 1);
  EXPECT_EQ(out.rows(), 0u);
}

TEST(CompiledSampler, LargeSparseCircuitSampling) {
  // A wide, shallow circuit: many qubits, one layer of noise, all
  // measured. Exercises multi-word expressions and B-matrix remapping.
  Circuit c(300);
  std::vector<std::uint32_t> all;
  for (std::uint32_t q = 0; q < 300; ++q) {
    all.push_back(q);
  }
  c.append(GateType::X_ERROR, all, 0.01);
  c.append(GateType::M, all);
  const CompiledSampler sampler = CompiledSampler::compile(c);
  EXPECT_EQ(sampler.num_symbols(), 301u);
  EXPECT_EQ(sampler.expression_nnz(), 300u);
  const BitMatrix samples = sampler.sample(50000, 4);
  double total_mean = 0;
  for (std::size_t k = 0; k < 300; ++k) {
    total_mean += row_mean(samples, k, 50000);
  }
  EXPECT_NEAR(total_mean / 300, 0.01, 0.002);
}

}  // namespace
}  // namespace symphase
