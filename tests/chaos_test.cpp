// Fault-injection harness for the serving stack (ISSUE: overload
// hardening). Each test throws one scripted transport or worker fault
// at a live server — RST mid-upload, RST mid-download, torn frames,
// an EINTR storm, an injected worker exception, drain under load — and
// pins the invariants that make the service operable:
//
//   - no crash (SIGPIPE in particular: CI runs this binary under
//     ASan/TSan, so "survived" also means no leak and no race),
//   - no protocol desync: after every fault a fresh request streams
//     byte-identical output to the direct SimulatorSession run,
//   - no poisoned cache: a failure inside one request never corrupts
//     the shared compiled session other requests keep hitting,
//   - graceful drain: SIGTERM finishes in-flight work, flushes it, and
//     the process exits 0 (pinned end-to-end on the real binary).
//
// The client side of each fault is src/net/fault.hpp's FaultSocket;
// the server side is never instrumented — it is the system under test.
//
// The binary path and data dir are injected by CMake (SYMPHASE_CLI_PATH,
// SYMPHASE_DATA_DIR).

#include <gtest/gtest.h>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/session.hpp"
#include "circuit/parser.hpp"
#include "http_test_client.hpp"
#include "net/client.hpp"
#include "net/fault.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "sampler/sample_writer.hpp"
#include "service/errors.hpp"
#include "service/request.hpp"
#include "service/service.hpp"
#include "service/wire.hpp"

namespace symphase {
namespace {

constexpr const char* kCircuit = "X 0\nM 0 1\n";

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

std::string direct_output(const std::string& circuit_text,
                          const SampleTask& task, SampleFormat format) {
  const SimulatorSession session(parse_circuit(circuit_text));
  std::ostringstream oss;
  WriterSink sink(oss, format);
  session.run(task, sink);
  return oss.str();
}

std::string one_frame_request(std::uint64_t request_id,
                              const SampleRequest& request) {
  FrameHeader header;
  header.request_id = request_id;
  header.flags = kFrameLast;
  return encode_frame(header, encode_request_payload(request));
}

/// In-process server whose run() result is observable — the drain
/// tests assert the loop exits *cleanly* (true), not merely exits.
class ChaosHarness {
 public:
  explicit ChaosHarness(SocketServerOptions options = {})
      : server_(std::move(options)),
        result_(std::async(std::launch::async, [this] {
          return server_.run();
        })) {}

  ~ChaosHarness() {
    if (result_.valid()) {
      server_.shutdown();
      result_.wait();
    }
  }

  std::string address() const {
    return "127.0.0.1:" + std::to_string(server_.port());
  }
  SocketServer& server() { return server_; }

  /// Joins the event loop and returns run()'s verdict.
  bool join() { return result_.get(); }

 private:
  SocketServer server_;
  std::future<bool> result_;
};

/// Waits until `predicate()` holds, polling service stats — the chaos
/// tests observe asynchronous cleanup (cancellation after an RST)
/// through the counters.
template <typename Predicate>
void await_stats(SamplingService& service, Predicate predicate) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!predicate(service.stats())) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << service.stats().to_line();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

/// Fresh-connection sanity probe: the server must still serve
/// byte-identical output after whatever fault just hit it.
void expect_still_serving(const std::string& address) {
  SampleRequest request;
  request.verb = RequestVerb::kSample;
  request.circuit_text = kCircuit;
  request.task.shots = 777;
  request.task.seed = 13;
  request.format = SampleFormat::kB8;
  ServiceClient client(address);
  client.submit(1, request);
  const MessageAssembler::Message reply = client.await(1);
  ASSERT_FALSE(reply.error) << reply.error_text;
  EXPECT_EQ(reply.payload,
            direct_output(kCircuit, request.task, request.format));
}

TEST(Chaos, ResetMidUploadLeavesServerServing) {
  // The client dies with an RST halfway through a request frame's
  // payload. The server must treat it as that connection's problem:
  // no crash, no SIGPIPE, and the next client is served correctly.
  ChaosHarness harness;
  {
    SampleRequest request;
    request.verb = RequestVerb::kSample;
    request.circuit_text = kCircuit;
    request.task.shots = 50'000;
    const std::string wire = one_frame_request(1, request);
    FaultPlan plan;
    plan.reset_after_bytes = kFrameHeaderBytes + 10;  // mid-payload
    FaultSocket socket(tcp_connect(parse_host_port(harness.address())),
                       plan);
    EXPECT_FALSE(socket.send(wire));  // the plan killed the connection
    EXPECT_FALSE(socket.alive());
  }
  expect_still_serving(harness.address());
}

TEST(Chaos, HalfCloseMidFrameIsAProtocolErrorNotAHang) {
  // A clean FIN in the middle of a frame is a torn message, not a
  // valid end-of-stream: the server must answer with an error frame
  // and close — and keep serving everyone else.
  ChaosHarness harness;
  {
    SampleRequest request;
    request.verb = RequestVerb::kSample;
    request.circuit_text = kCircuit;
    request.task.shots = 50'000;
    const std::string wire = one_frame_request(1, request);
    FaultPlan plan;
    plan.close_after_bytes = kFrameHeaderBytes + 10;
    FaultSocket socket(tcp_connect(parse_host_port(harness.address())),
                       plan);
    EXPECT_FALSE(socket.send(wire));

    // Drain whatever the server answers until IT closes; the reply (if
    // any) must be an error frame, and this read must terminate.
    FrameDecoder decoder;
    std::string last_error;
    char buffer[1 << 12];
    for (;;) {
      const std::size_t got = socket.recv_some(buffer, sizeof buffer);
      if (got == 0) {
        break;
      }
      decoder.feed({buffer, got});
      Frame frame;
      while (decoder.next(frame)) {
        EXPECT_NE(frame.header.flags & kFrameError, 0);
        last_error = frame.payload;
      }
    }
    EXPECT_NE(last_error.find("truncated inside a frame"), std::string::npos)
        << last_error;
  }
  expect_still_serving(harness.address());
}

TEST(Chaos, ResetMidDownloadCancelsWorkAndKeepsCacheClean) {
  // The client vanishes with an RST while a multi-megabyte response is
  // streaming. The abandoned job must be cancelled at the next chunk
  // boundary, and the shared compiled session must stay usable — the
  // follow-up request hits the same cache entry and matches the direct
  // run bit for bit.
  SocketServerOptions options;
  options.service.num_workers = 1;
  options.max_outbound_buffer = 1u << 16;
  ChaosHarness harness(std::move(options));
  SamplingService& service = harness.server().service();
  {
    SampleRequest huge;
    huge.verb = RequestVerb::kSample;
    huge.circuit_text = kCircuit;
    huge.task.shots = 50'000'000;
    huge.format = SampleFormat::kB8;
    FaultSocket socket(tcp_connect(parse_host_port(harness.address())),
                       FaultPlan{});
    ASSERT_TRUE(socket.send(one_frame_request(1, huge)));
    // Read one buffer's worth so the stream is demonstrably live, then
    // vanish mid-download.
    char buffer[1 << 12];
    ASSERT_NE(socket.recv_some(buffer, sizeof buffer), 0u);
    socket.reset_now();
  }
  await_stats(service,
              [](const ServiceStats& s) { return s.cancelled == 1; });
  expect_still_serving(harness.address());
  service.drain();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.compiles, 1u) << stats.to_line();  // cache survived
  EXPECT_EQ(stats.hits, 1u) << stats.to_line();
}

TEST(Chaos, TornFramesAndShortWritesStayByteIdentical) {
  // Three pipelined requests, the whole stream sliced into 3-byte
  // sends with stalls inside each message's header region: reassembly
  // must be oblivious to write boundaries.
  ChaosHarness harness;
  std::vector<SampleRequest> requests;
  std::string wire;
  for (std::uint64_t i = 1; i <= 3; ++i) {
    SampleRequest request;
    request.verb = RequestVerb::kSample;
    request.circuit_text = kCircuit;
    request.task.shots = 1000 + i;
    request.task.seed = i;
    requests.push_back(request);
    wire += one_frame_request(i, request);
  }
  FaultPlan plan;
  plan.max_write_chunk = 3;
  plan.tear_offsets = {5, kFrameHeaderBytes + 2, wire.size() / 2};
  plan.stall = std::chrono::milliseconds(2);
  FaultSocket socket(tcp_connect(parse_host_port(harness.address())), plan);
  ASSERT_TRUE(socket.send(wire));
  socket.close_writes_now();

  FrameDecoder decoder;
  MessageAssembler assembler;
  std::map<std::uint64_t, MessageAssembler::Message> replies;
  char buffer[1 << 16];
  for (;;) {
    const std::size_t got = socket.recv_some(buffer, sizeof buffer);
    if (got == 0) {
      break;
    }
    decoder.feed({buffer, got});
    Frame frame;
    while (decoder.next(frame)) {
      if (auto message = assembler.accept(frame)) {
        replies[message->request_id] = std::move(*message);
      }
    }
    ASSERT_FALSE(decoder.failed()) << decoder.error();
  }
  EXPECT_TRUE(decoder.finish()) << decoder.error();
  ASSERT_EQ(replies.size(), 3u);
  for (std::uint64_t i = 1; i <= 3; ++i) {
    ASSERT_FALSE(replies[i].error) << replies[i].error_text;
    EXPECT_EQ(replies[i].payload,
              direct_output(kCircuit, requests[i - 1].task,
                            requests[i - 1].format))
        << "request " << i;
  }
}

TEST(Chaos, EintrStormDuringTransferIsInvisible) {
  // A non-SA_RESTART signal fires at the process ~every millisecond
  // while a multi-megabyte response streams: every blocking call in
  // the client and the server (poll, read, send) sees EINTR and must
  // retry, not fail or drop bytes.
  struct sigaction action {};
  struct sigaction previous {};
  action.sa_handler = [](int) {};
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // deliberately no SA_RESTART
  ASSERT_EQ(sigaction(SIGUSR1, &action, &previous), 0);

  ChaosHarness harness;
  std::atomic<bool> storming{true};
  std::thread storm([&] {
    while (storming.load()) {
      kill(getpid(), SIGUSR1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  SampleRequest request;
  request.verb = RequestVerb::kSample;
  request.circuit_text = kCircuit;
  request.task.shots = 4'000'000;
  request.task.seed = 99;
  request.format = SampleFormat::kB8;
  std::string failure;
  std::string payload;
  try {
    ServiceClient client(harness.address());
    client.submit(1, request);
    const MessageAssembler::Message reply = client.await(1);
    if (reply.error) {
      failure = reply.error_text;
    } else {
      payload = std::move(reply.payload);
    }
  } catch (const std::exception& e) {
    failure = e.what();
  }
  storming.store(false);
  storm.join();
  ASSERT_EQ(sigaction(SIGUSR1, &previous, nullptr), 0);

  EXPECT_EQ(failure, "");
  EXPECT_EQ(payload, direct_output(kCircuit, request.task, request.format));
}

TEST(Chaos, InjectedWorkerFailureIsIsolatedAndCacheStaysClean) {
  // ServiceOptions::fault_hook fails exactly the second executed
  // request with an internal error. The neighbors must be untouched,
  // the failure must arrive as a structured E7 frame, and the shared
  // session must keep producing correct bytes afterwards.
  ServiceOptions options;
  options.num_workers = 1;
  options.fault_hook = [](std::uint64_t sequence, const SampleRequest&) {
    if (sequence == 2) {
      throw std::runtime_error("injected worker fault");
    }
  };
  SamplingService service(options);

  struct Reply {
    std::string payload;
    bool error = false;
    std::string error_text;
  };
  std::map<std::uint64_t, Reply> replies;
  std::mutex mutex;
  const FrameFn emit = [&](const FrameHeader& header,
                           std::string_view payload) {
    const std::lock_guard<std::mutex> lock(mutex);
    Reply& reply = replies[header.request_id];
    if ((header.flags & kFrameError) != 0) {
      reply.error = true;
      reply.error_text = std::string(payload);
    } else if ((header.flags & kFrameLast) == 0) {
      reply.payload += std::string(payload);
    }
  };

  SampleRequest request;
  request.verb = RequestVerb::kSample;
  request.circuit_text = kCircuit;
  request.task.shots = 2000;
  request.task.seed = 7;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    ASSERT_NE(service.submit(id, request, emit), 0u);
  }
  service.drain();

  const std::string expected =
      direct_output(kCircuit, request.task, request.format);
  const std::lock_guard<std::mutex> lock(mutex);
  EXPECT_FALSE(replies[1].error) << replies[1].error_text;
  EXPECT_EQ(replies[1].payload, expected);
  ASSERT_TRUE(replies[2].error);
  const ServiceError injected = parse_error_payload(replies[2].error_text);
  EXPECT_EQ(injected.code, ErrorCode::kInternal) << replies[2].error_text;
  EXPECT_FALSE(injected.retryable);
  EXPECT_NE(injected.message.find("injected worker fault"),
            std::string::npos);
  EXPECT_FALSE(replies[3].error) << replies[3].error_text;
  EXPECT_EQ(replies[3].payload, expected);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.failed, 1u) << stats.to_line();
  EXPECT_EQ(stats.completed, 2u) << stats.to_line();
  EXPECT_EQ(stats.compiles, 1u) << stats.to_line();  // not recompiled
}

TEST(Chaos, DrainFinishesInFlightRejectsNewAndExitsCleanly) {
  // In-process drain end to end: an in-flight response completes byte
  // for byte, a request submitted after drain is rejected with the
  // retryable `draining` error, new connections are refused, and the
  // event loop returns true (the exit-0 path).
  SocketServerOptions options;
  options.service.num_workers = 1;
  // Small outbound cap: the 500 KB response cannot fully flush while
  // we are busy poking `health`, so request 1 is provably in flight
  // across the whole drain sequence.
  options.max_outbound_buffer = 1u << 16;
  ChaosHarness harness(std::move(options));
  const std::string address = harness.address();

  SampleRequest big;
  big.verb = RequestVerb::kSample;
  big.circuit_text = kCircuit;
  big.task.shots = 2'000'000;
  big.task.seed = 21;
  big.format = SampleFormat::kB8;

  ServiceClient client(address);
  client.submit(1, big);
  // Drain only once the request demonstrably started executing —
  // draining an idle connection just retires it, and this test is
  // about the in-flight path.
  await_stats(harness.server().service(),
              [](const ServiceStats& s) { return s.misses == 1; });
  harness.server().drain();

  // The drain request travels through the self-pipe; `health` answers
  // from the loop thread, so once it reports draining, every later
  // frame on this connection is post-drain.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (client.health().find("state=draining") == std::string::npos) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  client.submit(2, big);
  const MessageAssembler::Message rejected = client.await(2);
  ASSERT_TRUE(rejected.error);
  const ServiceError error = parse_error_payload(rejected.error_text);
  EXPECT_EQ(error.code, ErrorCode::kDraining) << rejected.error_text;
  EXPECT_TRUE(error.retryable);

  const MessageAssembler::Message finished = client.await(1);
  ASSERT_FALSE(finished.error) << finished.error_text;
  EXPECT_EQ(finished.payload,
            direct_output(kCircuit, big.task, big.format));

  // Draining servers stop accepting: the listener is already closed.
  EXPECT_THROW(ServiceClient second(address), std::runtime_error);

  client.finish_writes();
  EXPECT_TRUE(harness.join());  // loop exits cleanly once conns retire
}

TEST(Chaos, ResilientClientRetriesRetryableRejection) {
  // Rate-limit the (single) connection's bucket so the second run is
  // rejected with rate_limited + a retry_after_ms hint; the client
  // must back off, resubmit on the same connection, and deliver
  // byte-identical output — counting both attempts.
  SocketServerOptions options;
  options.service.admission.client_shots_per_second = 2000;
  options.service.admission.client_burst_shots = 600;
  ChaosHarness harness(std::move(options));

  SampleRequest request;
  request.verb = RequestVerb::kSample;
  request.circuit_text = kCircuit;
  request.task.shots = 600;
  request.task.seed = 3;
  request.format = SampleFormat::kB8;
  const std::string expected =
      direct_output(kCircuit, request.task, request.format);

  RetryPolicy policy;
  policy.max_retries = 3;
  policy.initial_backoff_ms = 1;
  ResilientClient client(harness.address(), policy);

  std::string first;
  ResilientClient::Result result =
      client.run(request, [&](std::string_view bytes) {
        first += std::string(bytes);
      });
  ASSERT_TRUE(result.ok) << result.detail;
  EXPECT_EQ(result.attempts, 1u);
  EXPECT_EQ(first, expected);

  // Bucket is now empty (burst == cost): the immediate rerun must be
  // rejected once, then succeed after the hinted backoff.
  std::string second;
  result = client.run(request, [&](std::string_view bytes) {
    second += std::string(bytes);
  });
  ASSERT_TRUE(result.ok) << result.detail;
  EXPECT_GE(result.attempts, 2u);
  EXPECT_EQ(second, expected);
}

TEST(Chaos, ResilientClientReportsConnectFailureAfterRetries) {
  // Nothing listens on the target port: every attempt must fail with
  // kConnect (the CLI maps this to exit code 3), consuming exactly
  // max_retries + 1 attempts.
  Socket probe = tcp_listen(HostPort{"127.0.0.1", 0});
  const std::string address =
      "127.0.0.1:" + std::to_string(local_port(probe));
  probe.close_fd();  // the port is now (briefly) guaranteed dead

  RetryPolicy policy;
  policy.max_retries = 2;
  policy.initial_backoff_ms = 1;
  ResilientClient client(address, policy);
  SampleRequest request;
  request.verb = RequestVerb::kSample;
  request.circuit_text = kCircuit;
  request.task.shots = 1;
  const ResilientClient::Result result =
      client.run(request, [](std::string_view) {});
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.failure, ResilientClient::FailureKind::kConnect);
  EXPECT_EQ(result.attempts, 3u);
}

TEST(Chaos, ResilientClientTimesOutOnAStalledServer) {
  // The worker is parked, so the response never starts: the
  // per-request wall clock must fire (the CLI maps this to exit 5) and
  // dropping the connection cancels the abandoned request server-side.
  SocketServerOptions options;
  options.service.num_workers = 1;
  ChaosHarness harness(std::move(options));
  SamplingService& service = harness.server().service();

  std::mutex mutex;
  std::condition_variable cv;
  bool blocked = false;
  bool released = false;
  auto first = std::make_shared<std::atomic<bool>>(true);
  service.submit(1000, SampleRequest::sample(kCircuit, 100),
                 [&, first](const FrameHeader&, std::string_view) {
                   if (first->exchange(false)) {
                     std::unique_lock<std::mutex> lock(mutex);
                     blocked = true;
                     cv.notify_all();
                     cv.wait(lock, [&] { return released; });
                   }
                 });
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return blocked; });
  }

  RetryPolicy policy;
  policy.request_timeout_ms = 150;
  ResilientClient client(harness.address(), policy);
  SampleRequest request;
  request.verb = RequestVerb::kSample;
  request.circuit_text = kCircuit;
  request.task.shots = 50;
  const ResilientClient::Result result =
      client.run(request, [](std::string_view) {});
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.failure, ResilientClient::FailureKind::kTimeout);

  // Keep the worker parked until the server has seen the RST and
  // cancelled the abandoned (still-queued) request — releasing earlier
  // races the poll thread: a freed worker can complete the tiny job
  // before the reset lands, and then there is nothing left to cancel.
  await_stats(service,
              [](const ServiceStats& s) { return s.cancelled == 1; });
  {
    const std::lock_guard<std::mutex> lock(mutex);
    released = true;
  }
  cv.notify_all();
}

TEST(Chaos, HttpSlowReaderResetCancelsWorkAndServerKeepsServing) {
  // The HTTP twin of ResetMidDownloadCancelsWorkAndKeepsCacheClean,
  // with a slow-reader phase first: a gateway client POSTs a
  // multi-megabyte sample, reads a trickle (so the worker is provably
  // blocked on the tiny outbound cap), then vanishes with an RST. The
  // abandoned job must be cancelled at the next chunk boundary, a
  // concurrent well-behaved HTTP client must stream byte-identical
  // output throughout, and both transports must keep serving after.
  SocketServerOptions options;
  options.http_listen = "127.0.0.1:0";
  options.service.num_workers = 2;
  options.max_outbound_buffer = 1u << 16;
  ChaosHarness harness(std::move(options));
  SamplingService& service = harness.server().service();
  const std::uint16_t http_port = harness.server().http_port();

  SampleTask direct_task;
  direct_task.shots = 1000;
  direct_task.seed = 5;
  const std::string small_expected =
      direct_output(kCircuit, direct_task, SampleFormat::k01);
  const std::string small_body =
      std::string("{\"circuit\":\"") + http_testing::json_escape(kCircuit) +
      "\",\"shots\":1000,\"seed\":5}";

  {
    http_testing::HttpClient slow(http_port);
    slow.send_request("POST", "/v1/sample",
                      std::string("{\"circuit\":\"") +
                          http_testing::json_escape(kCircuit) +
                          "\",\"shots\":50000000,\"format\":\"b8\"}");
    // Pull a few KB off the socket so the stream is demonstrably live
    // (and the worker is parked on the outbound cap), reading slowly.
    std::size_t drained = 0;
    char buffer[1 << 10];
    while (drained < (1u << 14)) {
      const ssize_t got = ::recv(slow.fd(), buffer, sizeof buffer, 0);
      ASSERT_GT(got, 0);
      drained += static_cast<std::size_t>(got);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    // A well-behaved client on the second worker is unaffected by the
    // neighbor hogging its outbound buffer.
    http_testing::HttpClient good(http_port);
    good.send_request("POST", "/v1/sample", small_body);
    const http_testing::HttpResponse ok = good.read_response();
    ASSERT_EQ(ok.status, 200) << ok.body;
    EXPECT_TRUE(ok.chunked_complete);
    EXPECT_EQ(ok.body, small_expected);

    // Vanish with an RST instead of a clean FIN.
    const linger hard_reset{1, 0};
    ASSERT_EQ(::setsockopt(slow.fd(), SOL_SOCKET, SO_LINGER, &hard_reset,
                           sizeof hard_reset),
              0);
  }  // ~HttpClient closes the lingering socket -> RST

  await_stats(service,
              [](const ServiceStats& s) { return s.cancelled == 1; });

  // Both transports still serve byte-identical output.
  expect_still_serving(harness.address());
  http_testing::HttpClient after(http_port);
  after.send_request("POST", "/v1/sample", small_body);
  const http_testing::HttpResponse response = after.read_response();
  ASSERT_EQ(response.status, 200) << response.body;
  EXPECT_TRUE(response.chunked_complete);
  EXPECT_EQ(response.body, small_expected);
}

// ---------------------------------------------------------------------------
// Execution watchdog: wedged runs, stalls, worker crashes, idle
// connections. The wedge vector is the fault hooks: a hook that blocks
// holds the worker mid-claim, a worker_fault_hook that throws escapes
// the per-job handlers — both scripted, both observed through the
// watchdog's structured log, the new counters, and health.

/// Appends watchdog events to a shared vector; the wedge hooks below
/// poll it so they release only after the watchdog provably acted.
struct WatchdogLog {
  std::mutex mutex;
  std::vector<std::string> lines;

  std::function<void(std::string_view)> sink() {
    return [this](std::string_view line) {
      const std::lock_guard<std::mutex> lock(mutex);
      lines.emplace_back(line);
    };
  }

  bool saw(std::string_view event) {
    const std::string needle = "\"event\":\"" + std::string(event) + "\"";
    const std::lock_guard<std::mutex> lock(mutex);
    for (const std::string& line : lines) {
      if (line.find(needle) != std::string::npos) {
        return true;
      }
    }
    return false;
  }

  /// Blocks (bounded) until `event` was logged — the wedge hooks' exit
  /// condition, so tests are deterministic instead of sleep-tuned.
  void await(std::string_view event) {
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!saw(event)) {
      if (std::chrono::steady_clock::now() > give_up) {
        ADD_FAILURE() << "watchdog never logged " << event;
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
};

/// Thread-safe per-request reply collector for in-process submissions.
struct ReplyMap {
  struct Reply {
    std::string payload;
    bool error = false;
    std::string error_text;
  };
  std::map<std::uint64_t, Reply> replies;
  std::mutex mutex;

  FrameFn fn() {
    return [this](const FrameHeader& header, std::string_view payload) {
      const std::lock_guard<std::mutex> lock(mutex);
      Reply& reply = replies[header.request_id];
      if ((header.flags & kFrameError) != 0) {
        reply.error = true;
        reply.error_text = std::string(payload);
      } else if ((header.flags & kFrameLast) == 0) {
        reply.payload += std::string(payload);
      }
    };
  }

  Reply get(std::uint64_t id) {
    const std::lock_guard<std::mutex> lock(mutex);
    return replies[id];
  }
};

TEST(Chaos, WedgedRequestIsCutByExecTimeoutAndServiceKeepsServing) {
  // The acceptance wedge: the fault hook blocks the (only) worker
  // mid-claim, past the execution cap. The watchdog must cut the stuck
  // request — `deadline_expired` frame, `exec_timeouts` and
  // `expired_running` counters, NOT the pre-run `rejected_expired` —
  // and the next request must be served bit-exact.
  WatchdogLog log;
  ServiceOptions options;
  options.num_workers = 1;
  options.exec_timeout_ms = 100;
  options.watchdog_log = log.sink();
  options.fault_hook = [&log](std::uint64_t sequence, const SampleRequest&) {
    if (sequence == 1) {
      log.await("exec_timeout");  // wedge until the watchdog acted
    }
  };
  SamplingService service(options);
  ReplyMap replies;

  SampleRequest request;
  request.verb = RequestVerb::kSample;
  request.circuit_text = kCircuit;
  request.task.shots = 2000;
  request.task.seed = 7;
  ASSERT_NE(service.submit(1, request, replies.fn()), 0u);
  await_stats(service,
              [](const ServiceStats& s) { return s.expired_running == 1; });
  // Submitted only after the cut so it cannot fuse with the wedged run
  // (group members share the wedge, and the cap cuts every over-budget
  // member alike).
  ASSERT_NE(service.submit(2, request, replies.fn()), 0u);
  service.drain();

  const ReplyMap::Reply cut = replies.get(1);
  ASSERT_TRUE(cut.error);
  const ServiceError error = parse_error_payload(cut.error_text);
  EXPECT_EQ(error.code, ErrorCode::kDeadlineExpired) << cut.error_text;
  EXPECT_NE(error.message.find("wall-clock cap exceeded"),
            std::string::npos)
      << cut.error_text;
  const ReplyMap::Reply served = replies.get(2);
  EXPECT_FALSE(served.error) << served.error_text;
  EXPECT_EQ(served.payload,
            direct_output(kCircuit, request.task, request.format));

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.exec_timeouts, 1u) << stats.to_line();
  EXPECT_EQ(stats.expired_running, 1u) << stats.to_line();
  EXPECT_EQ(stats.rejected_expired, 0u) << stats.to_line();
  EXPECT_EQ(stats.completed, 1u) << stats.to_line();
  EXPECT_EQ(stats.workers_alive, 1u) << stats.to_line();
}

TEST(Chaos, StalledRequestIsFlaggedWithoutBeingAborted) {
  // Stall detection is observation, not enforcement: a run that makes
  // no shard-chunk progress for stall_warn_ms gets a structured log
  // line and the `stalled` counter — and then finishes normally once
  // it unwedges (no deadline, no exec cap).
  WatchdogLog log;
  ServiceOptions options;
  options.num_workers = 1;
  options.stall_warn_ms = 50;
  options.watchdog_log = log.sink();
  options.fault_hook = [&log](std::uint64_t sequence, const SampleRequest&) {
    if (sequence == 1) {
      log.await("stall");  // wedge until flagged, then recover
    }
  };
  SamplingService service(options);
  ReplyMap replies;

  SampleRequest request;
  request.verb = RequestVerb::kSample;
  request.circuit_text = kCircuit;
  request.task.shots = 2000;
  request.task.seed = 11;
  ASSERT_NE(service.submit(1, request, replies.fn()), 0u);
  service.drain();

  const ReplyMap::Reply reply = replies.get(1);
  EXPECT_FALSE(reply.error) << reply.error_text;
  EXPECT_EQ(reply.payload,
            direct_output(kCircuit, request.task, request.format));
  EXPECT_TRUE(log.saw("stall"));
  const ServiceStats stats = service.stats();
  EXPECT_GE(stats.stalled, 1u) << stats.to_line();
  EXPECT_EQ(stats.completed, 1u) << stats.to_line();
  EXPECT_EQ(stats.expired_running, 0u) << stats.to_line();
  EXPECT_EQ(stats.exec_timeouts, 0u) << stats.to_line();
}

TEST(Chaos, CrashedWorkerIsRespawnedAndPoolReturnsToFullStrength) {
  // The supervision pin: an exception escaping the per-job handlers
  // (worker_fault_hook throws outside them) fails only the in-flight
  // request with `internal`, the worker respawns (`worker_restarts`,
  // `workers_alive` back to the configured pool size), and the next
  // request is served bit-exact by the replacement.
  WatchdogLog log;
  std::atomic<int> crashes{0};
  ServiceOptions options;
  options.num_workers = 1;
  options.watchdog_log = log.sink();
  options.worker_fault_hook = [&crashes](std::size_t) {
    if (crashes.fetch_add(1) == 0) {
      throw std::runtime_error("injected wedge crash");
    }
  };
  SamplingService service(options);
  ReplyMap replies;

  SampleRequest request;
  request.verb = RequestVerb::kSample;
  request.circuit_text = kCircuit;
  request.task.shots = 2000;
  request.task.seed = 7;
  ASSERT_NE(service.submit(1, request, replies.fn()), 0u);
  await_stats(service, [](const ServiceStats& s) {
    return s.worker_restarts == 1 && s.workers_alive == 1;
  });
  EXPECT_TRUE(log.saw("worker_restart"));
  EXPECT_EQ(service.health().workers_alive, 1u);

  ASSERT_NE(service.submit(2, request, replies.fn()), 0u);
  service.drain();

  const ReplyMap::Reply crashed = replies.get(1);
  ASSERT_TRUE(crashed.error);
  const ServiceError error = parse_error_payload(crashed.error_text);
  EXPECT_EQ(error.code, ErrorCode::kInternal) << crashed.error_text;
  EXPECT_NE(error.message.find("worker crashed"), std::string::npos)
      << crashed.error_text;
  EXPECT_NE(error.message.find("injected wedge crash"), std::string::npos)
      << crashed.error_text;
  const ReplyMap::Reply served = replies.get(2);
  EXPECT_FALSE(served.error) << served.error_text;
  EXPECT_EQ(served.payload,
            direct_output(kCircuit, request.task, request.format));

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.failed, 1u) << stats.to_line();
  EXPECT_EQ(stats.completed, 1u) << stats.to_line();
  EXPECT_EQ(stats.worker_restarts, 1u) << stats.to_line();
  EXPECT_EQ(stats.workers_alive, 1u) << stats.to_line();
}

TEST(Chaos, IdleFrameConnectionGetsTimeoutFrameThenClose) {
  // The frame-transport slow-loris defense: a connection with nothing
  // in flight and no inbound bytes for idle_timeout_ms is told why
  // (one `timeout` error frame on the reserved request id 0) and
  // closed. A client mid-request never idles out; after its response
  // the clock restarts and the same farewell arrives.
  SocketServerOptions options;
  options.idle_timeout_ms = 100;
  ChaosHarness harness(std::move(options));
  {
    // Connect and go mute.
    FaultSocket socket(tcp_connect(parse_host_port(harness.address())),
                       FaultPlan{});
    FrameDecoder decoder;
    std::vector<Frame> frames;
    char buffer[1 << 12];
    for (;;) {
      const std::size_t got = socket.recv_some(buffer, sizeof buffer);
      if (got == 0) {
        break;  // the server closed after the farewell frame
      }
      decoder.feed({buffer, got});
      Frame frame;
      while (decoder.next(frame)) {
        frames.push_back(frame);
      }
    }
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].header.request_id, 0u);
    EXPECT_NE(frames[0].header.flags & kFrameError, 0u);
    const ServiceError error = parse_error_payload(frames[0].payload);
    EXPECT_EQ(error.code, ErrorCode::kTimeout) << frames[0].payload;
    EXPECT_TRUE(error.retryable);
    EXPECT_NE(error.message.find("idle timeout"), std::string::npos)
        << frames[0].payload;
  }
  {
    // A working client: full response first, farewell only afterwards.
    SampleRequest request;
    request.verb = RequestVerb::kSample;
    request.circuit_text = kCircuit;
    request.task.shots = 777;
    request.task.seed = 13;
    ServiceClient client(harness.address());
    client.submit(1, request);
    const MessageAssembler::Message reply = client.await(1);
    ASSERT_FALSE(reply.error) << reply.error_text;
    EXPECT_EQ(reply.payload,
              direct_output(kCircuit, request.task, request.format));
    Frame frame;
    ASSERT_TRUE(client.next_chunk(frame));  // blocks ~idle_timeout_ms
    EXPECT_EQ(frame.header.request_id, 0u);
    EXPECT_NE(frame.header.flags & kFrameError, 0u);
    EXPECT_FALSE(client.next_chunk(frame));  // clean close after it
  }
  expect_still_serving(harness.address());
}

TEST(Chaos, MidRunTimeoutCountersVisibleOnEveryTransport) {
  // Satellite pin: a mid-run cut lands in `expired_running` (and
  // `exec_timeouts`) on every surface — the frame `stats` verb in line
  // and JSON form, `health`, HTTP /v1/stats, and Prometheus /metrics —
  // while `rejected_expired` stays a pre-run-only counter.
  WatchdogLog log;
  SocketServerOptions options;
  options.http_listen = "127.0.0.1:0";
  options.service.num_workers = 1;
  options.service.exec_timeout_ms = 100;
  options.service.watchdog_log = log.sink();
  options.service.fault_hook = [&log](std::uint64_t sequence,
                                      const SampleRequest&) {
    if (sequence == 1) {
      log.await("exec_timeout");
    }
  };
  ChaosHarness harness(std::move(options));
  SamplingService& service = harness.server().service();

  SampleRequest request;
  request.verb = RequestVerb::kSample;
  request.circuit_text = kCircuit;
  request.task.shots = 2000;
  request.task.seed = 7;
  ServiceClient client(harness.address());
  client.submit(1, request);
  const MessageAssembler::Message reply = client.await(1);
  ASSERT_TRUE(reply.error);
  const ServiceError error = parse_error_payload(reply.error_text);
  EXPECT_EQ(error.code, ErrorCode::kDeadlineExpired) << reply.error_text;
  EXPECT_NE(error.message.find("wall-clock cap exceeded"),
            std::string::npos)
      << reply.error_text;
  // The counter lands just after the error frame is emitted.
  await_stats(service,
              [](const ServiceStats& s) { return s.expired_running == 1; });

  const std::string line = client.stats();
  EXPECT_NE(line.find(" expired_running=1"), std::string::npos) << line;
  EXPECT_NE(line.find(" exec_timeouts=1"), std::string::npos) << line;
  EXPECT_NE(line.find(" rejected_expired=0"), std::string::npos) << line;
  const std::string json = client.stats(/*json=*/true);
  EXPECT_NE(json.find("\"expired_running\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"exec_timeouts\":1"), std::string::npos) << json;
  const std::string health_line = client.health();
  EXPECT_NE(health_line.find("workers_alive=1"), std::string::npos)
      << health_line;
  EXPECT_NE(health_line.find("longest_running_ms="), std::string::npos)
      << health_line;

  http_testing::HttpClient http(harness.server().http_port());
  http.send_request("GET", "/v1/stats");
  const http_testing::HttpResponse stats_response = http.read_response();
  ASSERT_EQ(stats_response.status, 200) << stats_response.body;
  EXPECT_NE(stats_response.body.find("\"expired_running\":1"),
            std::string::npos)
      << stats_response.body;
  EXPECT_NE(stats_response.body.find("\"exec_timeouts\":1"),
            std::string::npos)
      << stats_response.body;
  http.send_request("GET", "/metrics");
  const http_testing::HttpResponse metrics = http.read_response();
  ASSERT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("symphase_requests_expired_running_total 1"),
            std::string::npos)
      << metrics.body;
  EXPECT_NE(metrics.body.find("symphase_exec_timeouts_total 1"),
            std::string::npos)
      << metrics.body;
  EXPECT_NE(metrics.body.find("symphase_stalled_requests 0"),
            std::string::npos)
      << metrics.body;
  EXPECT_NE(metrics.body.find("symphase_worker_restarts_total 0"),
            std::string::npos)
      << metrics.body;
  EXPECT_NE(metrics.body.find("symphase_workers_alive 1"),
            std::string::npos)
      << metrics.body;

  expect_still_serving(harness.address());
}

TEST(ChaosCli, SigtermDrainsInFlightDownloadAndExitsZero) {
  // The acceptance pin: the real binary, a response mid-stream, one
  // SIGTERM. The download must complete byte-identically, the process
  // must exit 0, and the port must stop accepting.
  const std::string base = ::testing::TempDir() + "/chaos_cli";
  const std::string port_path = base + ".port";
  std::remove(port_path.c_str());
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    const int null_fd = ::open("/dev/null", O_WRONLY);
    if (null_fd >= 0) {
      dup2(null_fd, STDERR_FILENO);
    }
    execl(SYMPHASE_CLI_PATH, "symphase", "serve", "--listen", "127.0.0.1:0",
          "--workers", "1", "--port-file", port_path.c_str(),
          static_cast<char*>(nullptr));
    _exit(127);
  }
  std::string port;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (port.empty()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "no port file";
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    std::ifstream in(port_path);
    std::string line;
    if (in.good() && std::getline(in, line) && !line.empty()) {
      port = line;
    }
  }

  SampleRequest big;
  big.verb = RequestVerb::kSample;
  big.circuit_text = kCircuit;
  big.task.shots = 2'000'000;
  big.task.seed = 77;
  big.format = SampleFormat::kB8;

  std::string payload;
  {
    ServiceClient client("127.0.0.1:" + port);
    client.submit(1, big);
    // First frame in hand = the response is demonstrably in flight;
    // now ask for the graceful shutdown.
    Frame frame;
    ASSERT_TRUE(client.next_chunk(frame));
    ASSERT_EQ(frame.header.flags & kFrameError, 0) << frame.payload;
    payload += frame.payload;
    ASSERT_EQ(kill(pid, SIGTERM), 0);
    while ((frame.header.flags & kFrameLast) == 0) {
      ASSERT_TRUE(client.next_chunk(frame));
      ASSERT_EQ(frame.header.flags & kFrameError, 0) << frame.payload;
      payload += frame.payload;
    }
  }
  EXPECT_EQ(payload, direct_output(kCircuit, big.task, big.format));

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

}  // namespace
}  // namespace symphase
