#include "pauli/pauli_string.hpp"

#include <gtest/gtest.h>

#include <complex>

#include "common/rng.hpp"

namespace symphase {
namespace {

using Mat = std::array<std::complex<double>, 4>;  // row-major 2x2

Mat matrix_of(SinglePauli p) {
  const std::complex<double> i{0, 1};
  switch (p) {
    case SinglePauli::I:
      return {1, 0, 0, 1};
    case SinglePauli::X:
      return {0, 1, 1, 0};
    case SinglePauli::Y:
      return {0, -i, i, 0};
    case SinglePauli::Z:
      return {1, 0, 0, -1};
  }
  return {};
}

Mat mat_mul(const Mat& a, const Mat& b) {
  return {a[0] * b[0] + a[1] * b[2], a[0] * b[1] + a[1] * b[3],
          a[2] * b[0] + a[3] * b[2], a[2] * b[1] + a[3] * b[3]};
}

bool mat_near(const Mat& a, const Mat& b) {
  for (int i = 0; i < 4; ++i) {
    if (std::abs(a[i] - b[i]) > 1e-12) {
      return false;
    }
  }
  return true;
}

Mat scale(const Mat& m, std::complex<double> s) {
  return {m[0] * s, m[1] * s, m[2] * s, m[3] * s};
}

// The g-function must match explicit 2x2 matrix algebra for all 16 pairs.
TEST(SinglePauli, ProductExponentMatchesMatrices) {
  const SinglePauli all[4] = {SinglePauli::I, SinglePauli::X, SinglePauli::Y,
                              SinglePauli::Z};
  const std::complex<double> i{0, 1};
  for (const SinglePauli p1 : all) {
    for (const SinglePauli p2 : all) {
      const int g = pauli_product_i_exp(pauli_x_bit(p1), pauli_z_bit(p1),
                                        pauli_x_bit(p2), pauli_z_bit(p2));
      // Result Pauli from XOR of bits.
      const SinglePauli p3 = pauli_from_xz(pauli_x_bit(p1) != pauli_x_bit(p2),
                                           pauli_z_bit(p1) != pauli_z_bit(p2));
      const Mat lhs = mat_mul(matrix_of(p1), matrix_of(p2));
      const Mat rhs = scale(matrix_of(p3), std::pow(i, g));
      EXPECT_TRUE(mat_near(lhs, rhs))
          << pauli_char(p1) << "*" << pauli_char(p2) << " g=" << g;
    }
  }
}

TEST(SinglePauli, AnticommutationTable) {
  // X,Y,Z pairwise anticommute; everything commutes with I and itself.
  const SinglePauli all[4] = {SinglePauli::I, SinglePauli::X, SinglePauli::Y,
                              SinglePauli::Z};
  for (const SinglePauli p1 : all) {
    for (const SinglePauli p2 : all) {
      const bool anti =
          pauli_anticommutes(pauli_x_bit(p1), pauli_z_bit(p1),
                             pauli_x_bit(p2), pauli_z_bit(p2));
      const bool expected =
          p1 != SinglePauli::I && p2 != SinglePauli::I && p1 != p2;
      EXPECT_EQ(anti, expected);
    }
  }
}

TEST(PauliString, ParseAndPrintRoundTrip) {
  for (const char* text : {"+XYZ_", "-ZZ", "+i_Y", "-iXX", "+____"}) {
    EXPECT_EQ(PauliString::from_string(text).to_string(), text);
  }
}

TEST(PauliString, ParseDefaults) {
  const PauliString p = PauliString::from_string("XZ");
  EXPECT_EQ(p.phase_exponent(), 0);
  EXPECT_EQ(p.num_qubits(), 2u);
  EXPECT_EQ(p.pauli_at(0), SinglePauli::X);
  EXPECT_EQ(p.pauli_at(1), SinglePauli::Z);
}

TEST(PauliString, ParseIdentityAliases) {
  const PauliString a = PauliString::from_string("I_I");
  EXPECT_TRUE(a.x_bits().count_ones() == 0 && a.z_bits().count_ones() == 0);
}

TEST(PauliString, InvalidCharacterThrows) {
  EXPECT_THROW(PauliString::from_string("XQ"), std::invalid_argument);
}

TEST(PauliString, SingleFactory) {
  const PauliString p = PauliString::single(5, 2, SinglePauli::Y);
  EXPECT_EQ(p.to_string(), "+__Y__");
  EXPECT_EQ(p.weight(), 1u);
}

TEST(PauliString, MultiplySmallCases) {
  const auto X = PauliString::from_string("X");
  const auto Y = PauliString::from_string("Y");
  const auto Z = PauliString::from_string("Z");
  EXPECT_EQ((X * Y).to_string(), "+iZ");
  EXPECT_EQ((Y * X).to_string(), "-iZ");
  EXPECT_EQ((Y * Z).to_string(), "+iX");
  EXPECT_EQ((Z * Y).to_string(), "-iX");
  EXPECT_EQ((Z * X).to_string(), "+iY");
  EXPECT_EQ((X * Z).to_string(), "-iY");
  EXPECT_EQ((X * X).to_string(), "+_");
}

TEST(PauliString, MultiplyCarriesPhases) {
  const auto a = PauliString::from_string("-X");
  const auto b = PauliString::from_string("-X");
  EXPECT_EQ((a * b).to_string(), "+_");
  const auto c = PauliString::from_string("+iX");
  EXPECT_EQ((c * c).to_string(), "-_");
}

TEST(PauliString, MultiQubitProduct) {
  const auto a = PauliString::from_string("XXYZ");
  const auto b = PauliString::from_string("YXZZ");
  // Per qubit: X*Y=iZ, X*X=I, Y*Z=iX, Z*Z=I -> i^2 ZIXI = -Z_X_.
  EXPECT_EQ((a * b).to_string(), "-Z_X_");
}

TEST(PauliString, CommutesMatchesSymplectic) {
  Rng rng(21);
  for (int trial = 0; trial < 200; ++trial) {
    const PauliString a = PauliString::random(30, rng);
    const PauliString b = PauliString::random(30, rng);
    // commute iff product phases in either order agree
    const int gab = pauli_mul_i_exponent(a, b);
    const int gba = pauli_mul_i_exponent(b, a);
    EXPECT_EQ(a.commutes_with(b), gab == gba);
  }
}

TEST(PauliString, MulExponentMatchesPerQubitSum) {
  Rng rng(22);
  for (int trial = 0; trial < 100; ++trial) {
    const PauliString a = PauliString::random(100, rng);
    const PauliString b = PauliString::random(100, rng);
    int expected = 0;
    for (std::size_t q = 0; q < 100; ++q) {
      expected += pauli_product_i_exp(a.x_bit(q), a.z_bit(q), b.x_bit(q),
                                      b.z_bit(q));
    }
    EXPECT_EQ(pauli_mul_i_exponent(a, b), expected % 4);
  }
}

TEST(PauliString, WeightCountsNonIdentity) {
  EXPECT_EQ(PauliString::from_string("X_Y_Z").weight(), 3u);
  EXPECT_EQ(PauliString(10).weight(), 0u);
}

TEST(PauliString, SignHelpers) {
  PauliString p(3);
  EXPECT_TRUE(p.phase_is_real());
  EXPECT_FALSE(p.sign());
  p.set_sign(true);
  EXPECT_TRUE(p.sign());
  EXPECT_EQ(p.phase_exponent(), 2);
}

TEST(PauliString, SelfInverseUpToPhase) {
  Rng rng(23);
  for (int trial = 0; trial < 50; ++trial) {
    PauliString a = PauliString::random(64, rng);
    const PauliString sq = a * a;
    // P^2 = i^{2*numY}; tensor part must be identity.
    EXPECT_EQ(sq.x_bits().count_ones(), 0u);
    EXPECT_EQ(sq.z_bits().count_ones(), 0u);
    EXPECT_TRUE(sq.phase_is_real());
  }
}

}  // namespace
}  // namespace symphase
