#include "symbolic/symbol_table.hpp"

#include <gtest/gtest.h>

namespace symphase {
namespace {

TEST(SymbolTable, StartsWithConstant) {
  SymbolTable t;
  EXPECT_EQ(t.num_symbols(), 1u);
  EXPECT_EQ(t.group_of(0).kind, SymbolGroupKind::kConstant);
  EXPECT_EQ(t.groups().size(), 1u);
}

TEST(SymbolTable, SequentialIds) {
  SymbolTable t;
  EXPECT_EQ(t.add_coin(), 1u);
  EXPECT_EQ(t.add_bernoulli(0.1), 2u);
  EXPECT_EQ(t.add_depolarize1(0.2), 3u);  // occupies 3,4
  EXPECT_EQ(t.add_depolarize2(0.3), 5u);  // occupies 5..8
  EXPECT_EQ(t.add_coin(), 9u);
  EXPECT_EQ(t.num_symbols(), 10u);
}

TEST(SymbolTable, GroupLookup) {
  SymbolTable t;
  t.add_coin();                       // 1
  const auto d1 = t.add_depolarize1(0.25);  // 2,3
  const auto d2 = t.add_depolarize2(0.5);   // 4..7
  EXPECT_EQ(t.group_of(1).kind, SymbolGroupKind::kCoin);
  EXPECT_DOUBLE_EQ(t.group_of(1).probability, 0.5);
  for (std::uint32_t s = d1; s < d1 + 2; ++s) {
    EXPECT_EQ(t.group_of(s).kind, SymbolGroupKind::kDepolarize1);
    EXPECT_EQ(t.group_of(s).first_symbol, d1);
    EXPECT_EQ(t.group_of(s).num_symbols, 2u);
    EXPECT_DOUBLE_EQ(t.group_of(s).probability, 0.25);
  }
  for (std::uint32_t s = d2; s < d2 + 4; ++s) {
    EXPECT_EQ(t.group_of(s).kind, SymbolGroupKind::kDepolarize2);
    EXPECT_EQ(t.group_of(s).first_symbol, d2);
    EXPECT_EQ(t.group_of(s).num_symbols, 4u);
  }
  EXPECT_NE(t.group_index_of(d1), t.group_index_of(d2));
  EXPECT_EQ(t.group_index_of(d1), t.group_index_of(d1 + 1));
}

TEST(SymbolTable, BernoulliKeepsProbability) {
  SymbolTable t;
  const auto s = t.add_bernoulli(0.125);
  EXPECT_EQ(t.group_of(s).kind, SymbolGroupKind::kBernoulli);
  EXPECT_DOUBLE_EQ(t.group_of(s).probability, 0.125);
  EXPECT_EQ(t.group_of(s).num_symbols, 1u);
}

}  // namespace
}  // namespace symphase
