// The TCP transport (src/net/): serve-over-TCP must be byte-compatible
// with `serve --stdio` and bit-identical to direct SimulatorSession
// sampling over the data/ corpus; multi-client concurrency shares one
// compiled session per digest; per-connection protocol rules (reserved
// id 0, in-flight id reuse) match the stdio loop; disconnects cancel
// abandoned work; and the CLI glue (`serve --listen`, `sample
// --connect`, SIGTERM shutdown) works end to end.
//
// The binary path and data dir are injected by CMake (SYMPHASE_CLI_PATH,
// SYMPHASE_DATA_DIR).

#include <gtest/gtest.h>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/session.hpp"
#include "circuit/parser.hpp"
#include "net/client.hpp"
#include "net/fault.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "sampler/sample_writer.hpp"
#include "service/request.hpp"
#include "service/wire.hpp"

namespace symphase {
namespace {

const std::vector<std::string>& corpus_files() {
  static const std::vector<std::string> files = {
      "fig1.stim",          "teleport.stim",
      "repetition_d5_r3.stim", "steane_r2.stim",
      "surface_d3_r3.stim", "surface_d3_r3_noisy.stim"};
  return files;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

std::string direct_output(const Circuit& circuit, const SampleTask& task,
                          SampleFormat format) {
  const SimulatorSession session(circuit);
  std::ostringstream oss;
  WriterSink sink(oss, format);
  session.run(task, sink);
  return oss.str();
}

/// In-process server on an ephemeral loopback port, event loop on its
/// own thread.
class ServerHarness {
 public:
  explicit ServerHarness(SocketServerOptions options = {})
      : server_(std::move(options)), loop_([this] { server_.run(); }) {}
  ~ServerHarness() {
    server_.shutdown();
    loop_.join();
  }
  std::string address() const {
    return "127.0.0.1:" + std::to_string(server_.port());
  }
  SocketServer& server() { return server_; }

 private:
  SocketServer server_;
  std::thread loop_;
};

std::string one_frame_request(std::uint64_t request_id,
                              const std::string& payload) {
  FrameHeader header;
  header.request_id = request_id;
  header.flags = kFrameLast;
  return encode_frame(header, payload);
}

/// Runs `symphase serve --stdio` on `input`, returning per-request
/// messages (same harness as service_differential_test).
std::map<std::uint64_t, MessageAssembler::Message> run_stdio(
    const std::string& input) {
  static int counter = 0;
  const std::string base =
      ::testing::TempDir() + "/socket_stdio_" + std::to_string(counter++);
  {
    std::ofstream out(base + ".in", std::ios::binary);
    out.write(input.data(), static_cast<std::streamsize>(input.size()));
  }
  const std::string command = std::string(SYMPHASE_CLI_PATH) +
                              " serve --stdio --workers 2 < " + base +
                              ".in > " + base + ".out 2>/dev/null";
  const int status = std::system(command.c_str());
  EXPECT_EQ(WEXITSTATUS(status), 0) << command;
  FrameDecoder decoder;
  MessageAssembler assembler;
  std::map<std::uint64_t, MessageAssembler::Message> messages;
  decoder.feed(read_file(base + ".out"));
  Frame frame;
  while (decoder.next(frame)) {
    if (auto message = assembler.accept(frame)) {
      messages[message->request_id] = std::move(*message);
    }
  }
  EXPECT_TRUE(decoder.finish()) << decoder.error();
  EXPECT_FALSE(assembler.failed()) << assembler.error();
  return messages;
}

class SocketDifferentialTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SocketDifferentialTest, TcpBitIdenticalToStdioAndDirect) {
  const std::string path = std::string(SYMPHASE_DATA_DIR) + "/" + GetParam();
  const std::string circuit_text = read_file(path);
  const Circuit circuit = parse_circuit(circuit_text);
  const bool has_detectors =
      circuit.num_detectors() + circuit.num_observables() > 0;

  // Multiple shards with a ragged, odd tail (packed-format padding).
  const std::size_t shots = 8192 + 99;
  const std::vector<SampleFormat> sample_formats = {
      SampleFormat::k01, SampleFormat::kB8, SampleFormat::kHex,
      SampleFormat::kPtb64};
  const std::vector<SampleFormat> detect_formats = {
      SampleFormat::kDets, SampleFormat::kB8, SampleFormat::k01,
      SampleFormat::kPtb64};

  std::vector<SampleRequest> requests;
  std::size_t rotation = 0;
  for (const SampleBackend backend :
       {SampleBackend::kSymPhase, SampleBackend::kFrameSimulator}) {
    for (const std::size_t threads : {1ul, 8ul}) {
      SampleRequest sample;
      sample.verb = RequestVerb::kSample;
      sample.circuit_text = circuit_text;
      sample.task.shots = shots;
      sample.task.seed = 9000 + rotation;
      sample.task.backend = backend;
      sample.task.num_threads = threads;
      sample.format = sample_formats[rotation % sample_formats.size()];
      requests.push_back(sample);
      if (has_detectors) {
        SampleRequest detect = sample;
        detect.verb = RequestVerb::kDetect;
        detect.task.target = SampleTarget::kDetectionEvents;
        detect.format = detect_formats[rotation % detect_formats.size()];
        requests.push_back(detect);
      }
      ++rotation;
    }
  }

  ServerHarness harness;
  ServiceClient client(harness.address());
  // Pipeline every request onto the one connection before reading
  // anything back — responses interleave and await() demultiplexes.
  std::string stdio_input;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    client.submit(i + 1, requests[i]);
    stdio_input +=
        one_frame_request(i + 1, encode_request_payload(requests[i]));
  }
  const auto stdio_messages = run_stdio(stdio_input);
  ASSERT_EQ(stdio_messages.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const MessageAssembler::Message tcp = client.await(i + 1);
    EXPECT_FALSE(tcp.error) << "request " << i + 1 << ": " << tcp.error_text;
    const std::string expected =
        direct_output(circuit, requests[i].task, requests[i].format);
    EXPECT_EQ(tcp.payload, expected) << GetParam() << " request " << i + 1;
    const auto stdio = stdio_messages.find(i + 1);
    ASSERT_NE(stdio, stdio_messages.end());
    EXPECT_EQ(tcp.payload, stdio->second.payload)
        << GetParam() << " request " << i + 1 << ": TCP diverged from stdio";
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, SocketDifferentialTest,
                         ::testing::ValuesIn(corpus_files()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '.' || c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(SocketServerTest, MultipleClientsShareOneCompiledSession) {
  const std::string circuit_text = "H 0\nCNOT 0 1\nX_ERROR(0.05) 0 1\nM 0 1\n";
  const Circuit circuit = parse_circuit(circuit_text);
  SocketServerOptions options;
  options.service.num_workers = 3;
  ServerHarness harness(std::move(options));

  constexpr int kClients = 3;
  constexpr int kRequestsPerClient = 3;
  std::vector<std::thread> clients;
  std::vector<std::string> failures(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        ServiceClient client(harness.address());
        for (int r = 0; r < kRequestsPerClient; ++r) {
          SampleRequest request;
          request.verb = RequestVerb::kSample;
          request.circuit_text = circuit_text;
          request.task.shots = 4000 + c;
          request.task.seed = 100 * c + r;
          request.format = SampleFormat::kB8;
          // Ids restart at 1 on every connection: id scoping is
          // per-client, the service demultiplexes by ticket.
          client.submit(r + 1, request);
        }
        for (int r = 0; r < kRequestsPerClient; ++r) {
          const MessageAssembler::Message reply = client.await(r + 1);
          if (reply.error) {
            failures[c] = reply.error_text;
            return;
          }
          const std::string expected = direct_output(
              circuit,
              SampleTask::measurements(4000 + c).with_seed(100 * c + r),
              SampleFormat::kB8);
          if (reply.payload != expected) {
            failures[c] = "payload mismatch";
            return;
          }
        }
      } catch (const std::exception& e) {
        failures[c] = e.what();
      }
    });
  }
  for (auto& thread : clients) {
    thread.join();
  }
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], "") << "client " << c;
  }
  harness.server().service().drain();  // settle worker-side accounting
  const ServiceStats stats = harness.server().service().stats();
  EXPECT_EQ(stats.compiles, 1u) << stats.to_line();  // one shared session
  EXPECT_EQ(stats.completed,
            static_cast<std::uint64_t>(kClients * kRequestsPerClient))
      << stats.to_line();
}

/// Parks a service's (single) worker on an in-process blocker request
/// whose first emitted frame waits until release() — the service behind
/// the TCP transport is the same object, so TCP requests submitted
/// while parked are provably queued, not racing an idle worker. Call
/// release() before destruction.
class WorkerPark {
 public:
  explicit WorkerPark(SamplingService& service) {
    auto first = std::make_shared<std::atomic<bool>>(true);
    service.submit(1000, SampleRequest::sample("X 0\nM 0\n", 100),
                   [this, first](const FrameHeader&, std::string_view) {
                     if (first->exchange(false)) {
                       std::unique_lock<std::mutex> lock(mutex_);
                       blocked_ = true;
                       cv_.notify_all();
                       cv_.wait(lock, [this] { return released_; });
                     }
                   });
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return blocked_; });
  }
  void release() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      released_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool blocked_ = false;
  bool released_ = false;
};

TEST(SocketServerTest, CancelAndDeadlineAndStatsOverTcp) {
  SocketServerOptions options;
  options.service.num_workers = 1;
  ServerHarness harness(std::move(options));
  SamplingService& service = harness.server().service();
  WorkerPark park(service);

  ServiceClient client(harness.address());
  SampleRequest doomed;
  doomed.verb = RequestVerb::kSample;
  doomed.circuit_text = "X 0\nM 0 1\n";
  doomed.task.shots = 1000;
  doomed.deadline_ms = 1;
  client.submit(2, doomed);

  SampleRequest queued = doomed;
  queued.deadline_ms = 0;
  queued.priority = RequestPriority::kLow;
  client.submit(3, queued);
  EXPECT_TRUE(client.cancel(3));
  EXPECT_FALSE(client.cancel(77));  // unknown id

  const MessageAssembler::Message cancelled = client.await(3);
  EXPECT_TRUE(cancelled.error);
  EXPECT_NE(cancelled.error_text.find("cancelled"), std::string::npos);

  // Let the doomed request's 1ms budget lapse in the queue, then free
  // the worker.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  park.release();

  const MessageAssembler::Message expired = client.await(2);
  EXPECT_TRUE(expired.error);
  EXPECT_NE(expired.error_text.find("deadline expired"), std::string::npos)
      << expired.error_text;

  // Quiesce the worker-side accounting (final frames can outrun the
  // counter updates), then the snapshot must carry the queue metrics.
  service.drain();
  const std::string stats = client.stats();
  for (const char* key :
       {"queue_depth=0", "queue_peak=2", "rejected_expired=1", "cancelled=1",
        "served_normal=1"}) {
    EXPECT_NE(stats.find(key), std::string::npos) << stats;
  }
}

TEST(SocketServerTest, FullQueueShedsLoadWithErrorFrame) {
  // The event loop must never block on queue space (it is the only
  // thread draining the sockets busy workers are waiting on), so a
  // full queue answers with an error frame instead — and the already
  // queued request is unaffected.
  SocketServerOptions options;
  options.service.num_workers = 1;
  options.service.queue_capacity = 1;
  ServerHarness harness(std::move(options));
  WorkerPark park(harness.server().service());

  ServiceClient client(harness.address());
  SampleRequest small;
  small.verb = RequestVerb::kSample;
  small.circuit_text = "X 0\nM 0 1\n";
  small.task.shots = 64;
  client.submit(2, small);  // fills the capacity-1 queue
  client.submit(3, small);  // shed

  const MessageAssembler::Message shed = client.await(3);
  EXPECT_TRUE(shed.error);
  EXPECT_NE(shed.error_text.find("queue is full"), std::string::npos)
      << shed.error_text;

  park.release();
  const MessageAssembler::Message queued = client.await(2);
  EXPECT_FALSE(queued.error) << queued.error_text;

  // The shed id is free for reuse once its error frame arrived.
  client.submit(3, small);
  EXPECT_FALSE(client.await(3).error);
}

TEST(SocketServerTest, ReservedIdAndInFlightReuseMatchStdioRules) {
  ServerHarness harness;
  Socket raw = tcp_connect(parse_host_port(harness.address()));
  const std::string request = encode_request_payload(
      SampleRequest::sample("X 0\nM 0\n", 3));

  // id 0: per-request error on id 0, connection survives.
  send_all(raw.fd(), one_frame_request(0, request));
  // Immediate id reuse while request 5's response may still be in
  // flight cannot be engineered reliably here (responses are fast), so
  // reuse is exercised the deterministic way: two submissions in one
  // burst against a server whose only worker is parked by an earlier
  // huge request.
  SampleRequest big = SampleRequest::sample("X 0\nM 0\n", 4'000'000);
  big.format = SampleFormat::kB8;
  send_all(raw.fd(), one_frame_request(5, encode_request_payload(big)));
  send_all(raw.fd(), one_frame_request(5, encode_request_payload(big)));

  FrameDecoder decoder;
  MessageAssembler assembler;
  std::map<std::uint64_t, MessageAssembler::Message> messages;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t got = ::read(raw.fd(), buffer, sizeof buffer);
    if (got <= 0) {
      break;  // server closed after the protocol error
    }
    decoder.feed({buffer, static_cast<std::size_t>(got)});
    Frame frame;
    while (decoder.next(frame)) {
      if (auto message = assembler.accept(frame)) {
        messages[message->request_id] = std::move(*message);
      }
    }
  }
  EXPECT_TRUE(decoder.finish()) << decoder.error();
  // The id-0 misuse answered on id 0 first, then the reuse burst turned
  // into a session-level protocol error (also on id 0) — the map keeps
  // the last one; both are error frames mentioning their cause.
  ASSERT_TRUE(messages.contains(0));
  EXPECT_TRUE(messages.at(0).error);
  EXPECT_NE(messages.at(0).error_text.find("reused while still in flight"),
            std::string::npos)
      << messages.at(0).error_text;
}

TEST(SocketServerTest, TornWritesReassembleAtEveryHeaderBoundary) {
  // The decoder must never depend on send() boundaries: one connection
  // per split point k tears the request frame's 17-byte header into
  // [0,k) + [k,...) with a stall in between, and the response must be
  // byte-identical to the direct run every time. k = 0 additionally
  // slices the whole stream one byte per send(2).
  const std::string circuit_text = "X 0\nM 0 1\n";
  const Circuit circuit = parse_circuit(circuit_text);
  SampleRequest request;
  request.verb = RequestVerb::kSample;
  request.circuit_text = circuit_text;
  request.task.shots = 500;
  request.task.seed = 5;
  const std::string wire = one_frame_request(1, encode_request_payload(request));
  const std::string expected =
      direct_output(circuit, request.task, request.format);

  ServerHarness harness;
  for (std::size_t k = 0; k <= kFrameHeaderBytes; ++k) {
    FaultPlan plan;
    if (k == 0) {
      plan.max_write_chunk = 1;
    } else {
      plan.tear_offsets = {k};
      plan.stall = std::chrono::milliseconds(5);
    }
    FaultSocket socket(tcp_connect(parse_host_port(harness.address())),
                       plan);
    ASSERT_TRUE(socket.send(wire)) << "split at " << k;
    socket.close_writes_now();

    FrameDecoder decoder;
    MessageAssembler assembler;
    MessageAssembler::Message response;
    bool complete = false;
    char buffer[1 << 16];
    while (!complete) {
      const std::size_t got = socket.recv_some(buffer, sizeof buffer);
      ASSERT_NE(got, 0u) << "server closed early (split at " << k << ")";
      decoder.feed({buffer, got});
      Frame frame;
      while (decoder.next(frame)) {
        if (auto message = assembler.accept(frame)) {
          response = std::move(*message);
          complete = true;
        }
      }
      ASSERT_FALSE(decoder.failed()) << decoder.error();
      ASSERT_FALSE(assembler.failed()) << assembler.error();
    }
    EXPECT_FALSE(response.error) << "split at " << k << ": "
                                 << response.error_text;
    EXPECT_EQ(response.payload, expected) << "split at " << k;
  }
}

TEST(SocketServerTest, DisconnectCancelsAbandonedWork) {
  SocketServerOptions options;
  options.service.num_workers = 1;
  // Tiny outbound cap: the worker parks on the unread response fast.
  options.max_outbound_buffer = 1u << 16;
  ServerHarness harness(std::move(options));
  {
    ServiceClient client(harness.address());
    SampleRequest huge;
    huge.verb = RequestVerb::kSample;
    huge.circuit_text = "X 0\nM 0 1\n";
    huge.task.shots = 50'000'000;  // 50 MB of b8 nobody will read
    huge.format = SampleFormat::kB8;
    client.submit(1, huge);
    // Wait until the worker demonstrably started it (the session miss
    // is counted at execution start), then vanish.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (harness.server().service().stats().misses == 0) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }  // ~ServiceClient: connection drops with the response mid-stream
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    const ServiceStats stats = harness.server().service().stats();
    if (stats.cancelled == 1) {
      break;
    }
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << stats.to_line();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

TEST(SocketCli, ServeListenSampleConnectEndToEnd) {
  // The real binary: spawn `serve --listen 127.0.0.1:0 --port-file`,
  // read the bound port from the file (the machine-readable channel —
  // no stderr scraping), sample over TCP, compare to the direct
  // session, then shut down with SIGTERM and expect a clean exit.
  const std::string base = ::testing::TempDir() + "/socket_cli";
  const std::string log_path = base + ".log";
  const std::string port_path = base + ".port";
  std::remove(port_path.c_str());
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    const int log_fd =
        ::open(log_path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (log_fd >= 0) {
      dup2(log_fd, STDERR_FILENO);
    }
    execl(SYMPHASE_CLI_PATH, "symphase", "serve", "--listen", "127.0.0.1:0",
          "--workers", "2", "--port-file", port_path.c_str(),
          static_cast<char*>(nullptr));
    _exit(127);
  }
  // The port file appears (with a full line) once the bind succeeded.
  std::string port;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (port.empty()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "no port file";
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    std::ifstream in(port_path);
    std::string line;
    if (in.good() && std::getline(in, line) && !line.empty()) {
      port = line;
    }
  }
  EXPECT_NE(read_file(log_path).find("listening on 127.0.0.1:" + port),
            std::string::npos);

  const std::string circuit_path =
      std::string(SYMPHASE_DATA_DIR) + "/surface_d3_r3_noisy.stim";
  const Circuit circuit = parse_circuit(read_file(circuit_path));
  const std::string out_path = base + ".out";
  const std::string command = std::string(SYMPHASE_CLI_PATH) + " sample " +
                              circuit_path +
                              " --shots 20000 --seed 11 --format b8"
                              " --threads 2 --connect 127.0.0.1:" +
                              port + " > " + out_path;
  ASSERT_EQ(WEXITSTATUS(std::system(command.c_str())), 0) << command;
  EXPECT_EQ(read_file(out_path),
            direct_output(circuit,
                          SampleTask::measurements(20000)
                              .with_seed(11)
                              .with_threads(2),
                          SampleFormat::kB8));

  // Bench mode rides the same path: latency lines, no data.
  const std::string bench_command =
      std::string(SYMPHASE_CLI_PATH) + " sample " + circuit_path +
      " --shots 1000 --connect 127.0.0.1:" + port + " --repeat 3 > " +
      out_path;
  ASSERT_EQ(WEXITSTATUS(std::system(bench_command.c_str())), 0)
      << bench_command;
  const std::string bench_out = read_file(out_path);
  EXPECT_EQ(std::count(bench_out.begin(), bench_out.end(), '\n'), 3);
  EXPECT_NE(bench_out.find("req_ms="), std::string::npos) << bench_out;

  ASSERT_EQ(kill(pid, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

}  // namespace
}  // namespace symphase
