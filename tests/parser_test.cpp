#include "circuit/parser.hpp"

#include <gtest/gtest.h>

namespace symphase {
namespace {

TEST(Parser, EmptyAndCommentsOnly) {
  EXPECT_TRUE(parse_circuit("").instructions().empty());
  EXPECT_TRUE(parse_circuit("\n\n  \n").instructions().empty());
  EXPECT_TRUE(parse_circuit("# hi\n  # there").instructions().empty());
}

TEST(Parser, SimpleInstructions) {
  const Circuit c = parse_circuit("H 0 1\nCNOT 0 1\nM 0 1\n");
  ASSERT_EQ(c.instructions().size(), 3u);
  EXPECT_EQ(c.instructions()[0].type, GateType::H);
  EXPECT_EQ(c.instructions()[0].targets, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(c.instructions()[1].type, GateType::CNOT);
  EXPECT_EQ(c.instructions()[2].type, GateType::M);
  EXPECT_EQ(c.num_qubits(), 2u);
}

TEST(Parser, NoTrailingNewline) {
  const Circuit c = parse_circuit("H 0");
  ASSERT_EQ(c.instructions().size(), 1u);
}

TEST(Parser, ProbabilityArguments) {
  const Circuit c = parse_circuit(
      "X_ERROR(0.25) 0\nDEPOLARIZE1( 0.01 ) 1 2\nDEPOLARIZE2(1e-3) 0 1");
  EXPECT_DOUBLE_EQ(c.instructions()[0].probability, 0.25);
  EXPECT_DOUBLE_EQ(c.instructions()[1].probability, 0.01);
  EXPECT_DOUBLE_EQ(c.instructions()[2].probability, 1e-3);
}

TEST(Parser, InlineComments) {
  const Circuit c = parse_circuit("H 0 # apply hadamard\nM 0  # read");
  ASSERT_EQ(c.instructions().size(), 2u);
  EXPECT_EQ(c.instructions()[0].targets.size(), 1u);
}

TEST(Parser, Aliases) {
  const Circuit c = parse_circuit("CX 0 1\nMZ 1\nRZ 0");
  EXPECT_EQ(c.instructions()[0].type, GateType::CNOT);
  EXPECT_EQ(c.instructions()[1].type, GateType::M);
  EXPECT_EQ(c.instructions()[2].type, GateType::R);
}

TEST(Parser, RepeatBlocks) {
  const Circuit c = parse_circuit("REPEAT 3 {\nH 0\nM 0\n}");
  EXPECT_EQ(c.instructions().size(), 6u);
  EXPECT_EQ(c.num_measurements(), 3u);
}

TEST(Parser, NestedRepeat) {
  const Circuit c = parse_circuit(
      "REPEAT 2 {\n"
      "  X 0\n"
      "  REPEAT 3 {\n"
      "    H 1\n"
      "  }\n"
      "}");
  // Each outer iteration: 1 X + 3 H = 4; total 8.
  EXPECT_EQ(c.instructions().size(), 8u);
}

TEST(Parser, RepeatZeroTimes) {
  const Circuit c = parse_circuit("REPEAT 0 {\nH 0\n}\nM 0");
  EXPECT_EQ(c.instructions().size(), 1u);
  EXPECT_EQ(c.instructions()[0].type, GateType::M);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    parse_circuit("H 0\nBOGUS 1\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("BOGUS"), std::string::npos);
  }
}

TEST(Parser, RejectsMalformedInput) {
  EXPECT_THROW(parse_circuit("H"), std::invalid_argument);          // no targets
  EXPECT_THROW(parse_circuit("X_ERROR 0"), std::invalid_argument);  // missing p
  EXPECT_THROW(parse_circuit("H(0.5) 0"), std::invalid_argument);   // extra arg
  EXPECT_THROW(parse_circuit("X_ERROR(0.5 0"), std::invalid_argument);
  EXPECT_THROW(parse_circuit("CNOT 0"), std::invalid_argument);     // odd pair
  EXPECT_THROW(parse_circuit("REPEAT 2 {\nH 0\n"), std::invalid_argument);
  EXPECT_THROW(parse_circuit("}"), std::invalid_argument);
  EXPECT_THROW(parse_circuit("REPEAT 2\nH 0\n}"), std::invalid_argument);
  EXPECT_THROW(parse_circuit("M 0 extra"), std::invalid_argument);
  EXPECT_THROW(parse_circuit("X_ERROR(2.0) 0"), std::invalid_argument);
}

TEST(Parser, RoundTripThroughText) {
  const char* text =
      "H 0 1 2\n"
      "CNOT 0 1\n"
      "X_ERROR(0.125) 2\n"
      "DEPOLARIZE2(0.0625) 0 1\n"
      "MR 1\n"
      "M 0 2\n";
  const Circuit c = parse_circuit(text);
  EXPECT_EQ(parse_circuit(c.to_text()), c);
  EXPECT_EQ(c.to_text(), text);
}

TEST(Parser, WhitespaceTolerant) {
  const Circuit c = parse_circuit("   H\t0   1 \n\tM  1");
  EXPECT_EQ(c.instructions().size(), 2u);
}

}  // namespace
}  // namespace symphase
