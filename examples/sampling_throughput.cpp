// Sampling-throughput demo: the headline comparison of the paper on one
// concrete circuit. Compiles a layered random interaction circuit with
// depolarizing noise, then times bulk sampling for
//   (1) SymPhase (Algorithm 1: compile once, multiply per batch),
//   (2) Pauli-frame propagation (the Stim baseline: re-traverse the
//       circuit per batch), and
//   (3) naive re-simulation (one full tableau run per shot),
// printing shots/second for each.

#include <cstdio>

#include "circuit/generators.hpp"
#include "common/timer.hpp"
#include "core/symphase.hpp"
#include "sampler/resample.hpp"

int main() {
  using namespace symphase;

  LayeredRandomCircuitOptions opt;
  opt.num_qubits = 100;
  opt.num_layers = 100;
  opt.cnot_pairs_per_layer = 5;
  opt.measure_fraction = 0.05;
  opt.depolarize_probability = 0.002;
  Rng rng(99);
  const Circuit circuit = layered_random_circuit(opt, rng);
  const CircuitStats stats = circuit.stats();
  std::printf("workload: %zu qubits, %zu gates, %zu measurements, "
              "%zu fault sites\n\n",
              stats.num_qubits, stats.num_gates, stats.num_measurements,
              stats.num_noise_sites);

  constexpr std::size_t kShots = 100000;

  Timer t;
  const CompiledSampler sym = CompiledSampler::compile(circuit);
  const double compile_time = t.seconds();
  t.restart();
  const BitMatrix sym_samples = sym.sample(kShots, 1);
  const double sym_time = t.seconds();
  std::printf("SymPhase:        compile %.3fs, %zu shots in %.3fs "
              "(%.0f shots/s)\n",
              compile_time, kShots, sym_time,
              static_cast<double>(kShots) / sym_time);

  t.restart();
  const FrameSimulator frame(circuit, 2);
  const double frame_init = t.seconds();
  t.restart();
  const BitMatrix frame_samples = frame.sample(kShots, 3);
  const double frame_time = t.seconds();
  std::printf("Pauli frames:    init    %.3fs, %zu shots in %.3fs "
              "(%.0f shots/s)\n",
              frame_init, kShots, frame_time,
              static_cast<double>(kShots) / frame_time);

  // Naive re-simulation is orders of magnitude slower; run fewer shots.
  constexpr std::size_t kNaiveShots = 20;
  t.restart();
  const BitMatrix naive = sample_by_resimulation(circuit, kNaiveShots, 4);
  const double naive_time = t.seconds();
  std::printf("Re-simulation:   %zu shots in %.3fs (%.0f shots/s)\n",
              kNaiveShots, naive_time,
              static_cast<double>(kNaiveShots) / naive_time);

  std::printf("\nspeedup of SymPhase over frames on this workload: %.1fx\n",
              frame_time / sym_time);
  std::printf("(sanity checksum: %zu %zu %zu)\n", sym_samples.count_ones(),
              frame_samples.count_ones(), naive.count_ones());
  return 0;
}
