// Quickstart: build a noisy stabilizer circuit, open a simulator
// session, sample many shots through a task, and inspect the results.
//
//   $ ./examples/quickstart
//
// This walks the exact workflow of the paper's Algorithm 1: a single
// forward pass turns the circuit into symbolic measurement expressions
// (Initialization), then sampling is a bit-matrix product (Sampling).
// The SimulatorSession makes the split concrete: the session owns the
// compiled artifacts, each SampleTask is one cheap request against
// them. See docs/api.md, and examples/streaming_sample.cpp for the
// bounded-memory streaming side of the same API.

#include <cstdio>

#include "api/session.hpp"
#include "core/symphase.hpp"

int main() {
  using namespace symphase;

  // A noisy Bell-pair experiment, written in the Stim-style text format.
  const Circuit circuit = parse_circuit(R"CIRCUIT(
    H 0
    CNOT 0 1
    X_ERROR(0.05) 0 1   # independent bit flips on both halves
    M 0 1
  )CIRCUIT");

  std::printf("circuit (%zu qubits, %zu measurements):\n%s\n",
              circuit.num_qubits(), circuit.num_measurements(),
              circuit.to_text().c_str());

  // --- Algorithm 1, Initialization: one traversal of the circuit. ----
  // The session compiles lazily on first use and caches the artifacts
  // for every later task.
  const SimulatorSession session(circuit);
  const CompiledSampler& sampler = session.compiled();
  std::printf("symbols introduced: %zu (incl. the constant s0)\n",
              sampler.num_symbols());
  for (std::size_t k = 0; k < sampler.num_measurements(); ++k) {
    std::printf("  m%zu = %s%s\n", k + 1,
                expression_to_string(sampler.expressions()[k]).c_str(),
                sampler.expressions()[k].was_random ? "   (random)" : "");
  }

  // --- Algorithm 1, Sampling: one task per request. ------------------
  constexpr std::size_t kShots = 100000;
  const BitMatrix samples = session.run_to_matrix(
      SampleTask::measurements(kShots).with_seed(42));

  // Row k = measurement k across shots; count disagreements between the
  // two halves of the Bell pair (only noise can decorrelate them).
  std::size_t disagreements = 0;
  for (std::size_t w = 0; w < words_for_bits(kShots); ++w) {
    disagreements += static_cast<std::size_t>(
        popcount(samples.row(0)[w] ^ samples.row(1)[w]));
  }
  std::printf("\n%zu shots: Bell halves disagree in %.3f%% of shots\n",
              kShots, 100.0 * static_cast<double>(disagreements) / kShots);
  std::printf("expected: p(1-p)+(1-p)p = %.3f%% for p = 0.05\n",
              100.0 * 2 * 0.05 * 0.95);

  // Exact marginals straight from the symbolic expressions, no sampling.
  for (std::size_t k = 0; k < sampler.num_measurements(); ++k) {
    std::printf("exact P(m%zu = 1) = %.4f\n", k + 1,
                sampler.outcome_probability(k));
  }
  return 0;
}
