// Fault analysis with symbolic phases: reproduces the paper's Fig. 1.
//
// A 4-qubit GHZ-prepare / fault / un-prepare circuit is compiled once;
// the symbolic measurement expressions show *which* fault would flip
// *which* measurement before a single sample is drawn:
//
//   m1 = s1,  m2 = s2,  m3 = s2 ^ s3,  m4 = s3 ^ s4
//
// This is the qualitative payoff of phase symbolization: the
// fault-to-measurement map is explicit, so a decoder (or a human) can
// read error propagation straight off the compiled circuit.

#include <cstdio>

#include "core/symphase.hpp"

int main() {
  using namespace symphase;

  constexpr double kFaultProbability = 0.1;
  const Circuit circuit = figure1_circuit(kFaultProbability);
  std::printf("Paper Fig. 1 circuit:\n%s\n", circuit.to_text().c_str());

  const CompiledSampler sampler = CompiledSampler::compile(circuit);

  std::printf("fault symbols:\n");
  std::printf("  s1 = Z fault on qubit 0 (between the Hadamards)\n");
  std::printf("  s2, s3, s4 = X faults on qubits 1, 2, 3\n\n");

  std::printf("symbolic measurement outcomes (paper Fig. 1 bottom row):\n");
  for (std::size_t k = 0; k < sampler.num_measurements(); ++k) {
    std::printf("  m%zu = %s\n", k + 1,
                expression_to_string(sampler.expressions()[k]).c_str());
  }

  // Sanity: every expression is deterministic (no fresh coins) because
  // the mirror circuit uncomputes all superposition before measuring.
  for (const MeasurementExpression& e : sampler.expressions()) {
    if (e.was_random) {
      std::printf("unexpected random outcome!\n");
      return 1;
    }
  }

  // Use the map: a flip on m2 XOR m3 isolates fault s3 etc. Show the
  // exact marginals and a quick empirical check.
  std::printf("\nexact flip probabilities at p = %.2f:\n", kFaultProbability);
  for (std::size_t k = 0; k < sampler.num_measurements(); ++k) {
    std::printf("  P(m%zu = 1) = %.4f\n", k + 1,
                sampler.outcome_probability(k));
  }

  constexpr std::size_t kShots = 200000;
  const BitMatrix samples = sampler.sample(kShots, 7);
  std::printf("\nempirical over %zu shots:\n", kShots);
  for (std::size_t k = 0; k < sampler.num_measurements(); ++k) {
    std::size_t ones = 0;
    for (std::size_t w = 0; w < words_for_bits(kShots); ++w) {
      ones += static_cast<std::size_t>(popcount(samples.row(k)[w]));
    }
    std::printf("  P(m%zu = 1) ~ %.4f\n", k + 1,
                static_cast<double>(ones) / kShots);
  }
  return 0;
}
