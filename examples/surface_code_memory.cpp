// Surface-code memory analysis — the full QEC workflow the paper's
// introduction targets: compile the gadget once, extract its detector
// error model for a decoder, and sample detection events in bulk.

#include <cstdio>

#include "circuit/surface_code.hpp"
#include "common/timer.hpp"
#include "core/symphase.hpp"

int main() {
  using namespace symphase;

  SurfaceCodeOptions opt;
  opt.distance = 5;
  opt.rounds = 5;
  opt.data_depolarization = 0.004;
  opt.measurement_flip_probability = 0.002;

  const Circuit circuit = surface_code_memory(opt);
  const CircuitStats stats = circuit.stats();
  std::printf("rotated surface code d=%zu, %zu rounds\n", opt.distance,
              opt.rounds);
  std::printf("  %zu qubits, %zu gates, %zu measurements, %zu fault sites\n",
              stats.num_qubits, stats.num_gates, stats.num_measurements,
              stats.num_noise_sites);

  Timer t;
  const CompiledSampler sampler = CompiledSampler::compile(circuit);
  std::printf("  compiled in %.3f s: %zu detectors, %zu observable(s), "
              "%zu symbols\n\n",
              t.seconds(), sampler.num_detectors(),
              sampler.num_observables(), sampler.num_symbols());

  // Decoder input: the detector error model, straight from the symbolic
  // expressions (first few mechanisms shown).
  const DetectorErrorModel dem = sampler.error_model().canonicalized();
  std::printf("detector error model: %zu mechanisms, e.g.\n",
              dem.mechanisms.size());
  const std::string text = dem.to_text();
  std::size_t shown = 0;
  std::size_t pos = 0;
  while (shown < 5 && pos < text.size()) {
    const std::size_t end = text.find('\n', pos);
    std::printf("  %s\n", text.substr(pos, end - pos).c_str());
    pos = end + 1;
    ++shown;
  }

  // Bulk detection-event sampling (what a decoder consumes).
  constexpr std::size_t kShots = 200000;
  t.restart();
  const auto events = sampler.sample_detection_events(kShots, 11);
  const double sample_time = t.seconds();
  std::size_t fired = 0;
  for (std::size_t d = 0; d < events.detectors.rows(); ++d) {
    for (std::size_t w = 0; w < words_for_bits(kShots); ++w) {
      fired += static_cast<std::size_t>(popcount(events.detectors.row(d)[w]));
    }
  }
  std::size_t logical_flips = 0;
  for (std::size_t w = 0; w < words_for_bits(kShots); ++w) {
    logical_flips +=
        static_cast<std::size_t>(popcount(events.observables.row(0)[w]));
  }
  std::printf("\n%zu shots in %.3f s (%.0f shots/s)\n", kShots, sample_time,
              static_cast<double>(kShots) / sample_time);
  std::printf("  mean detection events per shot: %.3f\n",
              static_cast<double>(fired) / kShots);
  std::printf("  raw (undecoded) logical flip rate: %.4f\n",
              static_cast<double>(logical_flips) / kShots);
  std::printf("  exact logical flip marginal:       %.4f\n",
              sampler.observable_probability(0));
  return 0;
}
