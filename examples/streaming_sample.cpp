// Streaming a large sampling run to disk with bounded memory.
//
//   $ ./examples/streaming_sample [shots]        (default 2,000,000)
//
// One SimulatorSession serves two tasks against the same compiled
// surface-code circuit:
//   1. measurement samples streamed to samples.b8 through a WriterSink
//      (raw Stim-style b8 records, shard-by-shard — the full outcome
//      matrix is never materialized);
//   2. detection events consumed by a CallbackSink that keeps only a
//      per-detector fire count, i.e. an online analysis with O(rows)
//      state for an arbitrarily long run.
//
// Both paths inherit the shard determinism contract: rerunning with the
// same seed reproduces the identical file and counts at any --threads.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <vector>

#include "api/session.hpp"
#include "circuit/surface_code.hpp"

int main(int argc, char** argv) {
  using namespace symphase;

  const std::size_t shots =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2'000'000;

  SurfaceCodeOptions sc;
  sc.distance = 3;
  sc.rounds = 3;
  sc.data_depolarization = 0.01;
  sc.measurement_flip_probability = 0.01;
  const SimulatorSession session(surface_code_memory(sc));

  // --- Task 1: stream raw measurement records to disk. ---------------
  {
    std::ofstream file("samples.b8", std::ios::binary);
    WriterSink sink(file, SampleFormat::kB8);
    session.run(SampleTask::measurements(shots).with_seed(1), sink);
    std::printf("wrote %zu b8 records (%zu bits each) to samples.b8\n",
                shots, session.circuit().num_measurements());
  }

  // --- Task 2: online detector statistics, no materialization. -------
  std::vector<std::size_t> fires;
  CallbackSink counter(
      [&](const SampleChunk& chunk) {
        for (std::size_t d = 0; d < fires.size(); ++d) {
          for (std::size_t w = 0; w < words_for_bits(chunk.num_shots); ++w) {
            fires[d] += static_cast<std::size_t>(
                popcount(chunk.bits->row(d)[w]));
          }
        }
      },
      [&](const SampleStreamInfo& info) {
        fires.assign(info.bits_per_shot, 0);
      });
  session.run(SampleTask::detection_events(shots).with_seed(1), counter);

  const std::size_t dets = session.num_detectors();
  std::printf("\ndetector fire rates over %zu shots:\n", shots);
  for (std::size_t d = 0; d < fires.size(); ++d) {
    const char* kind = d < dets ? "D" : "L";
    const std::size_t index = d < dets ? d : d - dets;
    std::printf("  %s%-3zu %8.5f   (exact %.5f)\n", kind, index,
                static_cast<double>(fires[d]) / static_cast<double>(shots),
                d < dets ? session.compiled().detector_probability(d)
                         : session.compiled().observable_probability(index));
  }
  return 0;
}
