// QEC gadget evaluation — the workload the paper's introduction
// motivates: sample a fault-tolerant gadget millions of times and count
// logical failures.
//
// This example sweeps physical error rates for repetition-code memory at
// several distances, decodes with majority vote, and prints the logical
// error rate curve. The circuit is compiled ONCE per (distance, p) and
// sampling is the cheap repeated step, exactly the regime where
// SymPhase's one-pass Initialization pays off.

#include <cstdio>

#include "core/symphase.hpp"

namespace {

using namespace symphase;

double logical_error_rate(std::size_t distance, std::size_t rounds,
                          double physical_p, std::size_t shots,
                          std::uint64_t seed) {
  RepetitionCodeOptions opt;
  opt.distance = distance;
  opt.rounds = rounds;
  opt.data_error_probability = physical_p;
  opt.measurement_error_probability = physical_p;
  const Circuit circuit = repetition_code_memory(opt);

  const CompiledSampler sampler = CompiledSampler::compile(circuit);
  const BitMatrix samples = sampler.sample(shots, seed);

  // Majority-vote decode of the final transversal data measurement (the
  // last `distance` rows). The logical qubit started at |0>, so any
  // majority-1 readout is a logical error.
  const std::size_t first_data = sampler.num_measurements() - distance;
  std::size_t failures = 0;
  for (std::size_t shot = 0; shot < shots; ++shot) {
    std::size_t ones = 0;
    for (std::size_t k = 0; k < distance; ++k) {
      ones += samples.get(first_data + k, shot);
    }
    failures += 2 * ones > distance;
  }
  return static_cast<double>(failures) / static_cast<double>(shots);
}

}  // namespace

int main() {
  constexpr std::size_t kShots = 200000;
  constexpr std::size_t kRounds = 3;

  std::printf("repetition-code memory, %zu rounds, majority-vote decoder, "
              "%zu shots per point\n\n",
              kRounds, kShots);
  std::printf("%10s", "p \\ d");
  for (const std::size_t d : {3u, 5u, 7u, 9u}) {
    std::printf("      d=%zu    ", d);
  }
  std::printf("\n");

  for (const double p : {0.01, 0.02, 0.05, 0.10, 0.20}) {
    std::printf("%10.2f", p);
    for (const std::size_t d : {3u, 5u, 7u, 9u}) {
      const double rate = logical_error_rate(
          d, kRounds, p, kShots, 1000 + static_cast<std::uint64_t>(d));
      std::printf("  %10.6f ", rate);
    }
    std::printf("\n");
  }

  std::printf(
      "\nBelow threshold the columns shrink left-to-right (larger distance\n"
      "suppresses logical errors); near p = 0.5 they merge, as expected.\n");
  return 0;
}
